(* Machine config, traffic accounting, NoC geometry, engines. *)

let cfg = Machine_config.default

let test_config_table2 () =
  Alcotest.(check int) "64 banks" 64 cfg.l3_banks;
  Alcotest.(check int) "256 compute arrays per bank" 256
    (Machine_config.compute_arrays_per_bank cfg);
  Alcotest.(check int) "4M bitlines" 4_194_304 (Machine_config.total_bitlines cfg);
  Alcotest.(check (Alcotest.float 1e-9)) "dram B/cycle" 12.8
    (Machine_config.dram_bytes_per_cycle cfg);
  Alcotest.(check (Alcotest.float 1e-9)) "peak simd" 1024.0
    (Machine_config.peak_simd_flops_per_cycle cfg)

let test_mesh_geometry () =
  Alcotest.(check int) "corner to corner" 14 (Machine_config.hops cfg 0 63);
  Alcotest.(check int) "self" 0 (Machine_config.hops cfg 5 5);
  Alcotest.(check int) "links" 224 (Machine_config.noc_links cfg);
  let ah = Machine_config.avg_hops cfg in
  Alcotest.(check bool) "avg hops ~5.25" true (Float.abs (ah -. 5.25) < 0.01)

let test_traffic_accounting () =
  let t = Traffic.create cfg in
  Traffic.add t Traffic.Data ~bytes:100.0 ~hops:3.0;
  Traffic.add t Traffic.Control ~bytes:10.0 ~hops:2.0;
  Traffic.add_local t `Htree ~bytes:50.0;
  Alcotest.(check (Alcotest.float 1e-9)) "bytes" 100.0 (Traffic.bytes t Traffic.Data);
  Alcotest.(check (Alcotest.float 1e-9)) "byte-hops" 300.0
    (Traffic.byte_hops t Traffic.Data);
  Alcotest.(check (Alcotest.float 1e-9)) "total" 110.0 (Traffic.total_bytes t);
  Alcotest.(check (Alcotest.float 1e-9)) "local" 50.0 (Traffic.local_bytes t `Htree);
  let t2 = Traffic.create cfg in
  Traffic.add t2 Traffic.Data ~bytes:1.0 ~hops:1.0;
  Traffic.merge_into ~dst:t2 t;
  Alcotest.(check (Alcotest.float 1e-9)) "merged" 101.0 (Traffic.bytes t2 Traffic.Data);
  Traffic.reset t;
  Alcotest.(check (Alcotest.float 1e-9)) "reset" 0.0 (Traffic.total_bytes t)

let test_utilization_bounded () =
  let t = Traffic.create cfg in
  Traffic.add t Traffic.Data ~bytes:1e6 ~hops:5.0;
  let u = Traffic.utilization t ~cycles:1e4 in
  Alcotest.(check bool) "sensible" true (u > 0.0 && u < 1.0)

let test_bulk_cycles_monotonic () =
  let c1 = Traffic.bulk_cycles cfg ~bytes:1e6 ~avg_hops:5.0 in
  let c2 = Traffic.bulk_cycles cfg ~bytes:2e6 ~avg_hops:5.0 in
  Alcotest.(check bool) "more bytes, more cycles" true (c2 > c1);
  Alcotest.(check (Alcotest.float 1e-9)) "zero bytes free" 0.0
    (Traffic.bulk_cycles cfg ~bytes:0.0 ~avg_hops:5.0)

let test_breakdown () =
  let b = Breakdown.zero () in
  b.Breakdown.compute <- 10.0;
  b.move <- 5.0;
  Alcotest.(check (Alcotest.float 1e-9)) "total" 15.0 (Breakdown.total b);
  let b2 = Breakdown.add b (Breakdown.scale b 2.0) in
  Alcotest.(check (Alcotest.float 1e-9)) "add+scale" 45.0 (Breakdown.total b2);
  Alcotest.(check int) "assoc 8 categories" 8 (List.length (Breakdown.to_assoc b))

let test_dram () =
  let c = Dram.load_cycles cfg ~bytes:12.8e6 in
  Alcotest.(check (Alcotest.float 1.0)) "1M cycles for 12.8MB" 1e6 c;
  Alcotest.(check bool) "transpose parallel over banks" true
    (Dram.transpose_cycles cfg ~bytes:1e6 < Dram.load_cycles cfg ~bytes:1e6);
  Alcotest.(check (Alcotest.float 1e-9)) "resident fill has no dram" 0.0
    (Dram.fill_transposed_cycles cfg ~bytes:0.0 ~resident:true)

let mk_cmd ?(lanes = 256) ?(tiles = (0, 64)) kind =
  Command.make kind ~dtype:Dtype.Fp32
    ~tile_box:(Hyperrect.of_ranges [ tiles ])
    ~lanes_per_tile:lanes

let test_imc_compute () =
  let t = Traffic.create cfg in
  let layout = { Imc.grid = [| 16384 |]; tile = [| 256 |] } in
  let cmds = [| mk_cmd (Command.Compute { op = Op.Add; const_operands = 0 }) |] in
  let r = Imc.execute cfg t ~layout cmds in
  Alcotest.(check bool) "compute cycles = op latency + dispatch" true
    (r.Imc.compute_cycles
     = float_of_int (Bitserial.op_cycles Op.Add Dtype.Fp32 + cfg.cmd_dispatch_cycles));
  Alcotest.(check (Alcotest.float 1e-9)) "elements" (256.0 *. 64.0)
    r.elements_computed

let test_imc_waves () =
  let t = Traffic.create cfg in
  let layout = { Imc.grid = [| 32768 |]; tile = [| 256 |] } in
  let small = [| mk_cmd ~tiles:(0, 16384) (Command.Compute { op = Op.Add; const_operands = 0 }) |] in
  let big = [| mk_cmd ~tiles:(0, 32768) (Command.Compute { op = Op.Add; const_operands = 0 }) |] in
  let r1 = Imc.execute cfg (Traffic.create cfg) ~layout small in
  let r2 = Imc.execute cfg t ~layout big in
  Alcotest.(check bool) "2x tiles -> ~2x cycles (waves)" true
    (r2.Imc.compute_cycles > r1.Imc.compute_cycles *. 1.5)

let test_imc_intra_vs_inter_shift () =
  let layout = { Imc.grid = [| 64; 256 |]; tile = [| 16; 16 |] } in
  let mk2 kind =
    Command.make kind ~dtype:Dtype.Fp32
      ~tile_box:(Hyperrect.of_ranges [ (0, 64); (0, 256) ])
      ~lanes_per_tile:16
  in
  let t1 = Traffic.create cfg in
  let _ = Imc.execute cfg t1 ~layout [| mk2 (Command.Intra_shift { dim = 1; distance = 1 }) |] in
  Alcotest.(check (Alcotest.float 1e-9)) "intra stays off the NoC" 0.0
    (Traffic.total_bytes t1);
  Alcotest.(check bool) "intra moves bytes locally" true
    (Traffic.local_bytes t1 `Intra_tile > 0.0);
  let t2 = Traffic.create cfg in
  let _ =
    Imc.execute cfg t2 ~layout
      [| mk2 (Command.Inter_shift { dim = 1; tile_dist = 1; intra_dist = 0 }) |]
  in
  Alcotest.(check bool) "inter-tile crosses the NoC" true
    (Traffic.bytes t2 Traffic.Inter_tile > 0.0)

let test_imc_sync_flushes () =
  let layout = { Imc.grid = [| 64; 256 |]; tile = [| 16; 16 |] } in
  let mk2 kind =
    Command.make kind ~dtype:Dtype.Fp32
      ~tile_box:(Hyperrect.of_ranges [ (0, 64); (0, 256) ])
      ~lanes_per_tile:16
  in
  let t = Traffic.create cfg in
  let r =
    Imc.execute cfg t ~layout
      [|
        mk2 (Command.Inter_shift { dim = 1; tile_dist = 1; intra_dist = 0 });
        Command.sync;
      |]
  in
  Alcotest.(check bool) "sync has cost" true (r.Imc.sync_cycles > 0.0);
  Alcotest.(check bool) "sync sends offload messages" true
    (Traffic.bytes t Traffic.Offload > 0.0)

let mk_workset ~flops ~bytes =
  {
    Workset.name = "w";
    iters = flops;
    flops_per_iter = 1.0;
    flops;
    streams =
      [|
        {
          Workset.array = "A";
          direction = Kernel_info.Read;
          indirect = false;
          elem_bytes = 4.0;
          accesses = bytes /. 4.0;
          distinct_bytes = bytes;
        };
      |];
    has_indirect = false;
  }

let test_corem_scaling () =
  let w = mk_workset ~flops:1e7 ~bytes:1e5 in
  let r1 = Corem.run cfg (Traffic.create cfg) w ~threads:1 ~cold_bytes:0.0 ~first_invocation:true in
  let r64 = Corem.run cfg (Traffic.create cfg) w ~threads:64 ~cold_bytes:0.0 ~first_invocation:true in
  Alcotest.(check bool) "64 threads much faster" true
    (r64.Corem.cycles < r1.Corem.cycles /. 10.0)

let test_near_reuse_traffic () =
  (* a broadcast table too big for the SEL3 buffer but reused from every
     bank generates NoC refetch traffic near-memory (kmeans centroids) *)
  let reuse_stream =
    {
      Workset.array = "C";
      direction = Kernel_info.Read;
      indirect = false;
      elem_bytes = 4.0;
      accesses = 1e6;
      distinct_bytes = 131072.0;
    }
  in
  let w =
    { (mk_workset ~flops:1e6 ~bytes:4e6) with Workset.streams = [| reuse_stream |] }
  in
  let t = Traffic.create cfg in
  let _ = Near.run cfg t w ~cold_bytes:0.0 in
  Alcotest.(check bool) "reuse refetch traffic" true
    (Traffic.bytes t Traffic.Data > 1e6);
  (* the same table inside the 64kB buffer stays local *)
  let small =
    { (mk_workset ~flops:1e6 ~bytes:4e6) with
      Workset.streams = [| { reuse_stream with distinct_bytes = 8192.0 } |] }
  in
  let t2 = Traffic.create cfg in
  let _ = Near.run cfg t2 small ~cold_bytes:0.0 in
  Alcotest.(check (Alcotest.float 1e-9)) "buffered operand stays local" 0.0
    (Traffic.bytes t2 Traffic.Data)

let test_near_sequential_no_data_traffic () =
  let w = mk_workset ~flops:1e6 ~bytes:4e6 in
  let t = Traffic.create cfg in
  let _ = Near.run cfg t w ~cold_bytes:0.0 in
  Alcotest.(check (Alcotest.float 1e-9)) "no core-L3 data traffic" 0.0
    (Traffic.bytes t Traffic.Data);
  Alcotest.(check bool) "offload management traffic" true
    (Traffic.bytes t Traffic.Offload > 0.0)

let test_energy_model () =
  let e = Energy.fresh () in
  e.Energy.core_flops <- 1.0;
  let core = Energy.total e in
  let e2 = Energy.fresh () in
  e2.Energy.sram_array_cycles <- 1.0;
  Alcotest.(check bool) "core op far costlier than sram cycle" true
    (core > 10.0 *. Energy.total e2);
  let e3 = Energy.fresh () in
  e3.Energy.dram_bytes <- 1.0;
  Alcotest.(check bool) "dram byte costlier than noc hop" true
    (Energy.total e3
    > Energy.total
        (let x = Energy.fresh () in
         x.Energy.noc_byte_hops <- 1.0;
         x))

let test_area_model () =
  let a = Area.default in
  Alcotest.(check bool) "paper 6.52% overhead" true
    (Float.abs (Area.overhead_fraction a -. 0.0652) < 1e-4);
  Alcotest.(check int) "table rows" 4 (List.length (Area.table a))



let test_workset_resolve () =
  let w = Infs_workloads.Mm.mm_outer ~n:64 in
  let prog = w.Infinity_stream.Workload.prog in
  let info = Kernel_info.analyze prog (List.hd (Ast.kernels prog)) in
  let env = function "N" -> 64 | "k" -> 0 | v -> failwith v in
  let ws = Workset.resolve info ~env ~arrays:[ ("A", [ 64; 64 ]); ("B", [ 64; 64 ]); ("C", [ 64; 64 ]) ] in
  Alcotest.(check (Alcotest.float 0.5)) "iterations" 4096.0 ws.Workset.iters;
  Alcotest.(check (Alcotest.float 0.5)) "flops" 8192.0 ws.flops;
  let a = Array.to_list ws.streams
    |> List.find (fun (s : Workset.stream) -> s.array = "A") in
  Alcotest.(check (Alcotest.float 0.5)) "A column bytes" 256.0 a.distinct_bytes;
  Alcotest.(check bool) "A has heavy reuse" true (Workset.reuse_factor a > 50.0);
  Alcotest.(check (Alcotest.float 1.0)) "touched = 3 regions"
    (256.0 +. 256.0 +. 16384.0)
    (Workset.touched_bytes ws)

(* ---- allocation regression: Workset growth is doubling, not
   realloc-per-push ----

   [Vec.push] doubles capacity, so n pushes allocate O(n) words across
   O(log n) backing arrays; the realloc-per-push pattern this replaces
   allocates ~n^2/2. Backing arrays past the minor-heap threshold land in
   the major heap, so the growth bound reads [Gc.allocated_bytes]
   (minor + major) and the per-resolve bound reads [Gc.minor_words]
   (stream records and small Vecs are all minor). Allocation totals are
   deterministic, so the bounds cannot flake. *)

let test_vec_doubling_allocation () =
  let n = 100_000 in
  let before = Gc.allocated_bytes () in
  let v = Vec.create () in
  for i = 0 to n - 1 do
    Vec.push v i
  done;
  let bytes = Gc.allocated_bytes () -. before in
  Alcotest.(check bool) "vec length" true (Vec.length v = n);
  (* doubling: <= 2n final capacity + 2n of discarded generations, plus
     word headers — well under 6n words. n^2/2 words would be ~4e10. *)
  let bound = 6.0 *. float_of_int n *. 8.0 in
  if bytes > bound then
    Alcotest.failf "Vec growth allocated %.0f bytes > doubling bound %.0f"
      bytes bound

let test_workset_resolve_allocation () =
  let w = Infs_workloads.Mm.mm_outer ~n:64 in
  let prog = w.Infinity_stream.Workload.prog in
  let info = Kernel_info.analyze prog (List.hd (Ast.kernels prog)) in
  let env = function "N" -> 64 | "k" -> 0 | v -> failwith v in
  let arrays = [ ("A", [ 64; 64 ]); ("B", [ 64; 64 ]); ("C", [ 64; 64 ]) ] in
  ignore (Workset.resolve info ~env ~arrays);
  let reps = 1_000 in
  let before = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (Workset.resolve info ~env ~arrays)
  done;
  let per_resolve = (Gc.minor_words () -. before) /. float_of_int reps in
  (* 3 streams: a few records, boxed floats, and one 8-slot Vec backing
     array; ~2000 words leaves headroom without hiding a quadratic blowup *)
  if per_resolve > 2_000.0 then
    Alcotest.failf "Workset.resolve allocates %.0f minor words per call"
      per_resolve

let suite =
  [
    ("config: Table 2 derived", `Quick, test_config_table2);
    ("mesh geometry", `Quick, test_mesh_geometry);
    ("traffic accounting", `Quick, test_traffic_accounting);
    ("utilization bounded", `Quick, test_utilization_bounded);
    ("bulk cycles monotonic", `Quick, test_bulk_cycles_monotonic);
    ("breakdown", `Quick, test_breakdown);
    ("dram + ttu", `Quick, test_dram);
    ("imc: compute", `Quick, test_imc_compute);
    ("imc: waves", `Quick, test_imc_waves);
    ("imc: intra vs inter shift", `Quick, test_imc_intra_vs_inter_shift);
    ("imc: sync barrier", `Quick, test_imc_sync_flushes);
    ("corem: thread scaling", `Quick, test_corem_scaling);
    ("near: reuse refetch", `Quick, test_near_reuse_traffic);
    ("near: streaming stays local", `Quick, test_near_sequential_no_data_traffic);
    ("energy model ordering", `Quick, test_energy_model);
    ("area model", `Quick, test_area_model);
    ("workset resolve", `Quick, test_workset_resolve);
    ("workset: vec doubling allocation", `Quick, test_vec_doubling_allocation);
    ("workset: resolve allocation bound", `Quick, test_workset_resolve_allocation);
  ]
