(* End-to-end paradigm engine: functional correctness of every paradigm on
   every test-scale workload, and the performance shapes the paper's
   evaluation establishes. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module W = Infinity_stream.Workload
module Cat = Infs_workloads.Catalog

let functional = { E.default_options with E.functional = true }

let run_checked p w =
  match E.run ~options:functional p w with
  | Error e -> Alcotest.failf "%s on %s: %s" (E.paradigm_to_string p) w.W.wname e
  | Ok r -> (
    match r.R.correctness with
    | `Checked err ->
      if err > 1e-3 then
        Alcotest.failf "%s on %s: max error %.2e" (E.paradigm_to_string p)
          w.W.wname err;
      r
    | `Skipped -> Alcotest.fail "expected a correctness check")

(* ---- paradigm-agreement matrix ----

   Every paradigm must agree with the golden interpreter bit-exactly: all
   executions — vectorized in-core, near-memory streams, bit-serial
   in-memory — model the same IEEE fp32 arithmetic. The only tolerated
   divergence is e-graph reassociation on the In-L3 path for the kernels
   below, where rewriting the reduction tree reorders fp32 additions by
   design; there the error is pinned to <=2 ulp AND must vanish with the
   optimizer off, so any real cost/value-model bug still fails. *)

let reassoc_allowlist = [ "stencil1d"; "stencil2d"; "conv2d" ]

let ulp_tolerated name p =
  p = E.In_l3
  && List.exists
       (fun pre ->
         String.length name >= String.length pre
         && String.sub name 0 (String.length pre) = pre)
       reassoc_allowlist

let check_agreement name p w =
  match E.run ~options:functional p w with
  | Error e -> Alcotest.failf "%s on %s: %s" (E.paradigm_to_string p) name e
  | Ok r -> (
    match r.R.correctness with
    | `Skipped -> Alcotest.fail "expected a correctness check"
    | `Checked err ->
      if ulp_tolerated name p then begin
        if err > 1e-6 then
          Alcotest.failf "%s on %s: reassociation error %.3e above 2 ulp"
            (E.paradigm_to_string p) name err;
        (* the divergence must be exactly the e-graph's reassociation:
           with the optimizer off the values are bit-identical *)
        let r0 =
          E.run_exn ~options:{ functional with E.optimize = false } p w
        in
        match r0.R.correctness with
        | `Checked 0.0 -> ()
        | `Checked e0 ->
          Alcotest.failf "%s on %s: optimize=false should be exact, got %.3e"
            (E.paradigm_to_string p) name e0
        | `Skipped -> Alcotest.fail "expected a correctness check"
      end
      else if err <> 0.0 then
        Alcotest.failf "%s on %s: expected bit-exact agreement, err %.3e"
          (E.paradigm_to_string p) name err)

let agreement_matrix =
  Cat.all_variants (Cat.test_scale ())
  @ [
      ("vec_add", Infs_workloads.Micro.vec_add ~n:16_384);
      ("array_sum", Infs_workloads.Micro.array_sum ~n:16_384);
      ("pointnet/tiny", Infs_workloads.Pointnet.tiny ());
    ]

(* one test per (workload, paradigm) pair *)
let correctness_tests =
  List.concat_map
    (fun (name, w) ->
      List.map
        (fun p ->
          ( Printf.sprintf "agree: %s [%s]" name (E.paradigm_to_string p),
            `Quick,
            fun () -> check_agreement name p w ))
        E.all_paradigms)
    agreement_matrix

let test_pointnet_tiny_all_paradigms () =
  let w = Infs_workloads.Pointnet.tiny () in
  List.iter (fun p -> ignore (run_checked p w)) [ E.Base; E.Near_l3; E.Inf_s ]

(* ---- performance-shape assertions (the paper's qualitative claims) ---- *)

let perf = E.default_options

let cycles ?(options = perf) p w = (E.run_exn ~options p w).R.cycles

let test_fig2_crossover () =
  (* Fig 2: with data resident and transposed, In-L3 wins big at 4M but the
     bit-serial latency cannot be amortized at small sizes. *)
  let options = { perf with E.warm_data = true; pre_transposed = true; charge_jit = false } in
  let big = Infs_workloads.Micro.vec_add ~n:4_194_304 in
  let in_l3 = cycles ~options E.In_l3 big in
  let near = cycles ~options E.Near_l3 big in
  Alcotest.(check bool)
    (Printf.sprintf "In-L3 >=8x Near-L3 at 4M (got %.1fx)" (near /. in_l3))
    true
    (near /. in_l3 >= 8.0);
  let small = Infs_workloads.Micro.vec_add ~n:16_384 in
  let in_small = cycles ~options E.In_l3 small in
  let near_small = cycles ~options E.Near_l3 small in
  Alcotest.(check bool) "advantage shrinks at 16k" true
    (near_small /. in_small < near /. in_l3)

let test_inf_s_beats_near_on_stencil () =
  let w = Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048 in
  let infs = cycles E.Inf_s w in
  let near = cycles E.Near_l3 w in
  let base = cycles E.Base w in
  Alcotest.(check bool) "Inf-S beats Near-L3" true (infs < near);
  Alcotest.(check bool) "Inf-S beats Base" true (infs < base)

let test_mm_dataflow_preference () =
  (* Fig 15: in-memory prefers the outer product; the baseline prefers the
     (tiled) inner product. *)
  let mm_in = Infs_workloads.Mm.mm_inner ~n:2048 in
  let mm_out = Infs_workloads.Mm.mm_outer ~n:2048 in
  Alcotest.(check bool) "Inf-S: outer < inner" true
    (cycles E.Inf_s mm_out < cycles E.Inf_s mm_in);
  Alcotest.(check bool) "Base: inner < outer" true
    (cycles E.Base mm_in < cycles E.Base mm_out)

let test_nojit_no_slower () =
  (* at paper scale both configurations offload the same regions, so
     removing the JIT charge can only help (Fig 11's Inf-S-noJIT) *)
  let w = Infs_workloads.Gauss.gauss_elim ~n:2048 in
  Alcotest.(check bool) "noJIT <= JIT" true
    (cycles E.Inf_s_nojit w <= cycles E.Inf_s w)

let test_traffic_reduction () =
  (* Fig 12: Inf-S removes most NoC traffic relative to Base. *)
  let w = Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048 in
  let bh r = List.fold_left (fun a (_, v) -> a +. v) 0.0 r.R.noc_byte_hops in
  let base = E.run_exn E.Base w in
  let infs = E.run_exn E.Inf_s w in
  Alcotest.(check bool) "traffic reduced by >60%" true
    (bh infs < 0.4 *. bh base);
  Alcotest.(check bool) "in-memory moves data intra-tile instead" true
    (List.assoc "intra-tile" infs.R.local_bytes > 0.0)

let test_energy_efficiency_ordering () =
  (* Fig 18 shape: Inf-S more energy-efficient than Near-L3 than Base. *)
  let w = Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048 in
  let base = E.run_exn E.Base w in
  let near = E.run_exn E.Near_l3 w in
  let infs = E.run_exn E.Inf_s w in
  Alcotest.(check bool) "Inf-S beats Near-L3 energy" true
    (R.energy_efficiency ~baseline:base infs
    > R.energy_efficiency ~baseline:base near);
  Alcotest.(check bool) "Near-L3 beats Base energy" true
    (R.energy_efficiency ~baseline:base near > 1.0)

let test_jit_memoization_across_iterations () =
  (* iterative stencils re-execute the same region: the JIT must be
     memoized after the first iteration (paper §4.2) *)
  let w = Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048 in
  let r = E.run_exn E.Inf_s w in
  Alcotest.(check bool) "memo hits" true (r.R.jit.memo_hits >= 16);
  Alcotest.(check bool) "jit time below 20% of runtime" true
    (r.R.jit.total_jit_cycles < 0.2 *. r.R.cycles)

let test_gauss_jit_never_memoizes () =
  (* gauss's domains shrink every pivot iteration — the paper calls it the
     JIT outlier because nothing can be reused *)
  let w = Infs_workloads.Gauss.gauss_elim ~n:256 in
  let r = E.run_exn E.Inf_s w in
  Alcotest.(check int) "no memo hits" 0 r.R.jit.memo_hits

let test_tile_override () =
  let w = Infs_workloads.Stencil.stencil2d ~iters:2 ~n:2048 in
  let with_tile tile =
    cycles ~options:{ perf with E.tile_override = Some tile } E.Inf_s w
  in
  (* a degenerate 256x1 tile makes every vertical shift inter-tile *)
  Alcotest.(check bool) "balanced beats degenerate" true
    (with_tile [| 16; 16 |] <= with_tile [| 1; 256 |])

let test_timeline_and_report_fields () =
  let w = Infs_workloads.Pointnet.tiny () in
  let r = E.run_exn E.Inf_s w in
  Alcotest.(check bool) "timeline populated" true (List.length r.R.timeline > 10);
  Alcotest.(check bool) "utilization sane" true
    (r.R.noc_utilization >= 0.0 && r.R.noc_utilization <= 1.0);
  Alcotest.(check bool) "energy positive" true (r.R.energy > 0.0)

let test_in_mem_fraction_dots () =
  (* Fig 14's dots: nearly all ops execute in-memory for dense kernels *)
  let w = Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048 in
  let r = E.run_exn E.Inf_s w in
  Alcotest.(check bool) "ops >90% in-memory" true (r.R.in_mem_op_fraction > 0.9)

let test_run_rejects_invalid () =
  let open Ast in
  let bad =
    program ~name:"bad" ~params:[]
      ~arrays:[]
      [ Kernel (kernel "k" [ loop "i" (c 0) (c 4) ] [ store "Z" [ i "i" ] (fconst 1.0) ]) ]
  in
  let w = W.make ~name:"bad" ~params:[] ~inputs:(lazy []) bad in
  Alcotest.(check bool) "invalid program rejected" true
    (Result.is_error (E.run E.Base w))


let test_lot_capacity () =
  (* more transposed arrays than LOT entries (16): the oldest transposed
     regions are released to normal layout, and re-offloading them pays the
     transposition again — the program still runs and stays correct *)
  let open Ast in
  let n = Symaff.var "N" in
  let pairs = List.init 20 (fun i -> (Printf.sprintf "I%d" i, Printf.sprintf "O%d" i)) in
  let arrays =
    List.concat_map
      (fun (a, b) -> [ array a Dtype.Fp32 [ n ]; array b Dtype.Fp32 [ n ] ])
      pairs
  in
  let kernels_ =
    List.map
      (fun (a, b) ->
        Kernel
          (kernel ("k_" ^ a)
             [ loop "r" (c 0) n ]
             [ store b [ i "r" ] (load a [ i "r" ] + fconst 1.0) ]))
      pairs
  in
  let prog = program ~name:"lots" ~params:[ "N" ] ~arrays kernels_ in
  let w =
    W.make ~name:"lots" ~params:[ ("N", 256) ]
      ~inputs:
        (lazy
          (List.mapi
             (fun i (a, _) -> (a, Infs_workloads.Data.uniform ~seed:i 256))
             pairs))
      prog
  in
  let r = run_checked E.In_l3 w in
  Alcotest.(check int) "all 20 kernels ran" 20 (List.length r.R.timeline)


let test_portability_512 () =
  (* the same fat binary (which carries a 512-wordline schedule) runs on
     the big-array machine without recompilation *)
  let w = Infs_workloads.Stencil.stencil2d ~iters:2 ~n:48 in
  let options =
    { functional with E.cfg = Machine_config.big_arrays }
  in
  match E.run ~options E.Inf_s w with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    match r.R.correctness with
    | `Checked err -> Alcotest.(check bool) "correct on 512x512" true (err < 1e-3)
    | `Skipped -> Alcotest.fail "expected check")


let test_in_dram_substrate () =
  (* the unchanged stack runs on the in-DRAM substrate sketch; within the
     L3's capacity the faster SRAM steps win, beyond it the in-DRAM
     substrate avoids the memory bus entirely *)
  let opts cfg =
    { perf with E.cfg; warm_data = true; pre_transposed = true; charge_jit = false }
  in
  let cyc cfg n =
    (E.run_exn ~options:(opts cfg) E.In_l3 (Infs_workloads.Micro.vec_add ~n)).R.cycles
  in
  let small_sram = cyc Machine_config.default 4_194_304 in
  let small_dram = cyc Machine_config.in_dram 4_194_304 in
  Alcotest.(check bool) "sram wins within its capacity" true
    (small_sram < small_dram);
  let big_sram = cyc Machine_config.default 33_554_432 in
  let big_dram = cyc Machine_config.in_dram 33_554_432 in
  Alcotest.(check bool) "in-DRAM wins beyond on-chip capacity" true
    (big_dram < big_sram);
  (* functional correctness is substrate-independent *)
  let w = Infs_workloads.Micro.vec_add ~n:4096 in
  let r =
    E.run_exn
      ~options:{ functional with E.cfg = Machine_config.in_dram }
      E.In_l3 w
  in
  match r.R.correctness with
  | `Checked err -> Alcotest.(check bool) "correct on DRAM substrate" true (err = 0.0)
  | `Skipped -> Alcotest.fail "expected check"

let suite =
  correctness_tests
  @ [
      ("pointnet tiny all paradigms", `Slow, test_pointnet_tiny_all_paradigms);
      ("fig2 crossover", `Quick, test_fig2_crossover);
      ("Inf-S beats Near/Base on stencil", `Quick, test_inf_s_beats_near_on_stencil);
      ("mm dataflow preference", `Quick, test_mm_dataflow_preference);
      ("noJIT no slower", `Quick, test_nojit_no_slower);
      ("traffic reduction", `Quick, test_traffic_reduction);
      ("energy efficiency ordering", `Quick, test_energy_efficiency_ordering);
      ("jit memoization across iterations", `Quick, test_jit_memoization_across_iterations);
      ("gauss jit never memoizes", `Quick, test_gauss_jit_never_memoizes);
      ("tile override", `Quick, test_tile_override);
      ("timeline and report fields", `Quick, test_timeline_and_report_fields);
      ("in-memory op fraction", `Quick, test_in_mem_fraction_dots);
      ("invalid program rejected", `Quick, test_run_rejects_invalid);
      ("LOT capacity respected", `Quick, test_lot_capacity);
      ("portability: 512x512 machine", `Quick, test_portability_512);
      ("in-DRAM substrate sketch", `Quick, test_in_dram_substrate);
    ]
