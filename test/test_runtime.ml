(* Layout selection (§4.1), JIT lowering (§4.2), memoization, Eq. 2. *)

let cfg = Machine_config.default

let no_hints =
  {
    Fat_binary.shift_dims = [];
    bc_dims = [];
    reduce_dims = [];
    primary_array = None;
    aligned_arrays = [];
  }

let test_layout_candidates_constraints () =
  let cands = Layout.candidates cfg ~shape:[| 2048; 2048 |] ~elems_per_line:16 in
  Alcotest.(check bool) "candidates exist" true (cands <> []);
  List.iter
    (fun (l : Layout.t) ->
      Alcotest.(check int) "tile volume = bitlines" cfg.sram_bitlines
        (Array.fold_left ( * ) 1 l.tile);
      let t_contig = l.tile.(Array.length l.tile - 1) in
      Alcotest.(check int) "line alignment" 0
        (t_contig * Machine_config.compute_arrays_per_bank cfg mod 16))
    cands

let test_layout_heuristic_shift_balanced () =
  let hints = { no_hints with Fat_binary.shift_dims = [ 0; 1 ] } in
  match Layout.choose cfg ~hints ~shape:[| 2048; 2048 |] ~elems_per_line:16 with
  | Error e -> Alcotest.fail e
  | Ok l ->
    (* paper: shifts favor a close-to-square tile (16x16 for 2D) *)
    Alcotest.(check (array int)) "square tile" [| 16; 16 |] l.Layout.tile

let test_layout_heuristic_reduce_dim_maximized () =
  let hints = { no_hints with Fat_binary.reduce_dims = [ 2 ] } in
  match Layout.choose cfg ~hints ~shape:[| 32768; 128; 128 |] ~elems_per_line:16 with
  | Error e -> Alcotest.fail e
  | Ok l ->
    (* tiling by 128 lets the reduction finish in-tile (paper §8 data
       layout discussion for kmeans/in) *)
    Alcotest.(check int) "reduce dim tile covers 128" 128 l.Layout.tile.(2)

let test_layout_heuristic_bc_small_innermost () =
  let hints = { no_hints with Fat_binary.bc_dims = [ 0; 1 ] } in
  match Layout.choose cfg ~hints ~shape:[| 2048; 2048 |] ~elems_per_line:16 with
  | Error e -> Alcotest.fail e
  | Ok l ->
    Alcotest.(check bool) "small innermost tile" true (l.Layout.tile.(1) <= 16)

let test_layout_of_tile_rejects_bad_volume () =
  Alcotest.(check bool) "bad volume" true
    (Result.is_error (Layout.of_tile cfg ~shape:[| 64; 64 |] ~tile:[| 8; 8 |]))

(* lowering helpers *)

let lower_region ?(env = fun _ -> 0) w kname =
  let prog = w.Infinity_stream.Workload.prog in
  match Fat_binary.compile prog with
  | Error e -> Alcotest.fail e
  | Ok fb -> (
    match Fat_binary.region_of fb kname with
    | None -> Alcotest.fail ("no region " ^ kname)
    | Some r -> (
      match r.fallback with
      | Some f -> Alcotest.fail ("fallback: " ^ f)
      | None ->
        let g = r.optimized in
        let schedule = List.assoc 256 r.schedules in
        let shape =
          (* small fixed shape for the tests *)
          Array.make (Tdfg.lattice_dims g) 64
        in
        let layout =
          match Layout.choose cfg ~hints:r.hints ~shape ~elems_per_line:16 with
          | Ok l -> l
          | Error e -> Alcotest.fail e
        in
        (g, schedule, layout, env)))

let test_lowering_stencil_commands () =
  let w = Infs_workloads.Stencil.stencil1d ~iters:1 ~n:64 in
  let g, _, _, _ = lower_region w "stencil1d" in
  let env = function
    | "N" -> 4096
    | "T" -> 1
    | "t" -> 0
    | v -> Alcotest.failf "unexpected var %s" v
  in
  let layout =
    match Layout.of_tile cfg ~shape:[| 4096 |] ~tile:[| 256 |] with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  let schedule =
    match Schedule.compile ~wordlines:256 g with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let acmds, stats = Jit.lower cfg g ~schedule ~layout ~env in
  let cmds = Array.to_list acmds in
  Alcotest.(check bool) "commands produced" true (stats.Jit.commands > 0);
  (* the two mv(+-1) nodes each produce intra- and inter-tile shifts at
     tile boundaries, and inter-tile movement forces a sync before use *)
  let inter =
    List.exists
      (fun (c : Command.t) ->
        match c.kind with Command.Inter_shift _ -> true | _ -> false)
      cmds
  in
  let sync = List.exists Command.is_sync cmds in
  Alcotest.(check bool) "inter-tile shifts" true inter;
  Alcotest.(check bool) "sync inserted" true sync;
  (* a sync must appear before the first compute that follows an
     inter-tile shift *)
  let rec check_order dirty = function
    | [] -> true
    | (c : Command.t) :: rest -> (
      match c.kind with
      | Command.Inter_shift _ -> check_order true rest
      | Command.Sync -> check_order false rest
      | Command.Compute _ | Command.Reduce _ ->
        (not dirty) && check_order dirty rest
      | _ -> check_order dirty rest)
  in
  Alcotest.(check bool) "sync precedes consumers" true (check_order false cmds)

(* Property: Algorithm 2 conserves elements — the lanes moved by the shift
   commands of one mv equal the tensor's volume. *)
let prop_mv_lowering_conserves_elements =
  QCheck.Test.make ~name:"Alg 2 conserves moved elements" ~count:200
    QCheck.(
      quad (int_range 1 64) (int_range 65 512) (int_range (-40) 40)
        (oneofl [ 256 ]))
    (fun (lo, hi, dist, tile) ->
      QCheck.assume (dist <> 0);
      QCheck.assume (hi - lo > 1);
      let g = Tdfg.create ~name:"t" ~dims:1 ~dtype:Dtype.Fp32 in
      let view = Symrect.of_hyperrect (Hyperrect.of_ranges [ (lo, hi) ]) in
      let a = Tdfg.tensor g ~array:"A" ~view ~axes:[ 0 ] in
      let m = Tdfg.mv g a ~dim:0 ~dist in
      Tdfg.add_output g (Tdfg.Out_tensor { src = m; array = "B"; axes = [ 0 ] });
      let schedule =
        match Schedule.compile ~wordlines:256 g with
        | Ok s -> s
        | Error e -> failwith e
      in
      QCheck.assume (tile = 256);
      let layout =
        match Layout.of_tile cfg ~shape:[| 1024 |] ~tile:[| tile |] with
        | Ok l -> l
        | Error e -> failwith e
      in
      let acmds, _ = Jit.lower cfg g ~schedule ~layout ~env:(fun _ -> 0) in
      let cmds = Array.to_list acmds in
      let moved =
        List.fold_left
          (fun acc (c : Command.t) ->
            match c.kind with
            | Command.Intra_shift _ | Command.Inter_shift _ ->
              acc + Command.elements_touched c
            | _ -> acc)
          0 cmds
      in
      moved = hi - lo)

let test_memoization () =
  let w = Infs_workloads.Stencil.stencil1d ~iters:1 ~n:64 in
  let g, _, _, _ = lower_region w "stencil1d" in
  let schedule =
    match Schedule.compile ~wordlines:256 g with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let layout =
    match Layout.of_tile cfg ~shape:[| 4096 |] ~tile:[| 256 |] with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  let env = function "N" -> 4096 | _ -> 0 in
  let memo = Jit.memo_create () in
  let _, s1 = Jit.lower_memo memo ~key:"k" cfg g ~schedule ~layout ~env in
  let _, s2 = Jit.lower_memo memo ~key:"k" cfg g ~schedule ~layout ~env in
  Alcotest.(check bool) "first is a miss" false s1.Jit.memoized;
  Alcotest.(check bool) "second is a hit" true s2.Jit.memoized;
  Alcotest.(check bool) "hit is much cheaper" true
    (s2.jit_cycles < s1.jit_cycles /. 2.0);
  Alcotest.(check int) "hit count" 1 (Jit.memo_hits memo)

let test_decision_small_stays_near () =
  let v =
    Decision.decide cfg
      ~ops:[ (Op.Add, 1) ]
      ~node_count:5 ~dtype:Dtype.Fp32 ~elems:4096.0 ~flops:4096.0
      ~data_bytes:49152.0 ~fits:true ~jit_known:false
  in
  Alcotest.(check bool) "small input stays near" true
    (v.Decision.target = Decision.Near_memory)

let test_decision_large_goes_in_memory () =
  let v =
    Decision.decide cfg
      ~ops:[ (Op.Add, 5) ]
      ~node_count:10 ~dtype:Dtype.Fp32 ~elems:4.0e6 ~flops:2.0e7
      ~data_bytes:3.2e7 ~fits:true ~jit_known:false
  in
  Alcotest.(check bool) "large input offloads" true
    (v.Decision.target = Decision.In_memory)

let test_decision_no_layout () =
  let v =
    Decision.decide cfg ~ops:[] ~node_count:0 ~dtype:Dtype.Fp32 ~elems:1.0
      ~flops:1.0 ~data_bytes:1.0 ~fits:false ~jit_known:false
  in
  Alcotest.(check bool) "no layout -> near" true
    (v.Decision.target = Decision.Near_memory)

(* Eq. 2's inequality is strict: [core > imc] offloads, so an exact tie
   must stay near-memory (documented in decision.mli). Zero work on both
   sides (no ops, no flops, no bytes, JIT memoized) is an exact 0 = 0
   tie, reproducible in floating point. *)
let test_decision_exact_tie_stays_near () =
  let v =
    Decision.decide cfg ~ops:[] ~node_count:0 ~dtype:Dtype.Fp32 ~elems:0.0
      ~flops:0.0 ~data_bytes:0.0 ~fits:true ~jit_known:true
  in
  Alcotest.(check (float 0.0)) "core side" 0.0 v.Decision.core_cycles;
  Alcotest.(check (float 0.0)) "imc side" 0.0 v.Decision.imc_cycles;
  Alcotest.(check bool) "tie resolves to near-memory" true
    (v.Decision.target = Decision.Near_memory);
  Alcotest.(check bool) "reason names the tie" true
    (String.length v.Decision.reason >= 4
    && String.sub v.Decision.reason 0 4 = "tie:")

let test_decision_override_force_imc () =
  (* same inputs as the small-stays-near case: the override flips it *)
  let v =
    Decision.decide cfg ~override:Decision.Force_imc
      ~ops:[ (Op.Add, 1) ]
      ~node_count:5 ~dtype:Dtype.Fp32 ~elems:4096.0 ~flops:4096.0
      ~data_bytes:49152.0 ~fits:true ~jit_known:false
  in
  Alcotest.(check bool) "forced in-memory" true
    (v.Decision.target = Decision.In_memory);
  Alcotest.(check bool) "reason records the Eq. 2 verdict" true
    (v.Decision.reason = "tuned override: force-imc (Eq. 2 picks near-memory)")

let test_decision_override_force_core () =
  let v =
    Decision.decide cfg ~override:Decision.Force_core
      ~ops:[ (Op.Add, 5) ]
      ~node_count:10 ~dtype:Dtype.Fp32 ~elems:4.0e6 ~flops:2.0e7
      ~data_bytes:3.2e7 ~fits:true ~jit_known:false
  in
  Alcotest.(check bool) "forced off the in-memory path" true
    (v.Decision.target = Decision.Near_memory);
  Alcotest.(check bool) "reason records the Eq. 2 verdict" true
    (v.Decision.reason = "tuned override: force-core (Eq. 2 picks in-memory)")

let test_decision_override_ignored_without_layout () =
  (* fits=false is a hard constraint: no override can offload *)
  let v =
    Decision.decide cfg ~override:Decision.Force_imc ~ops:[] ~node_count:0
      ~dtype:Dtype.Fp32 ~elems:1.0 ~flops:1.0 ~data_bytes:1.0 ~fits:false
      ~jit_known:false
  in
  Alcotest.(check bool) "no layout -> near even under force-imc" true
    (v.Decision.target = Decision.Near_memory)

let test_decision_policy_resolve () =
  let policy =
    Decision.Tuned
      {
        default = Decision.Force_core;
        per_kernel = [ ("k2", Decision.Force_imc) ];
      }
  in
  Alcotest.(check bool) "heuristic resolves to Auto" true
    (Decision.resolve Decision.Heuristic ~kernel:"k2" = Decision.Auto);
  Alcotest.(check bool) "per-kernel entry wins" true
    (Decision.resolve policy ~kernel:"k2" = Decision.Force_imc);
  Alcotest.(check bool) "other kernels get the default" true
    (Decision.resolve policy ~kernel:"k1" = Decision.Force_core)

let test_decision_memoized_jit_lowers_threshold () =
  let mk jit_known =
    Decision.decide cfg
      ~ops:[ (Op.Add, 1) ]
      ~node_count:100 ~dtype:Dtype.Fp32 ~elems:1.0e6 ~flops:1.3e7
      ~data_bytes:4.0e6 ~fits:true ~jit_known
  in
  Alcotest.(check bool) "jit term matters" true
    ((mk true).Decision.imc_cycles < (mk false).Decision.imc_cycles)

let suite =
  [
    ("layout candidates meet constraints", `Quick, test_layout_candidates_constraints);
    ("layout: shifts pick square tiles", `Quick, test_layout_heuristic_shift_balanced);
    ("layout: reduction maximizes reduced dim", `Quick, test_layout_heuristic_reduce_dim_maximized);
    ("layout: broadcast picks small innermost", `Quick, test_layout_heuristic_bc_small_innermost);
    ("layout: bad volume rejected", `Quick, test_layout_of_tile_rejects_bad_volume);
    ("lowering: stencil commands + sync", `Quick, test_lowering_stencil_commands);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_mv_lowering_conserves_elements;
    ("memoization", `Quick, test_memoization);
    ("Eq2: small stays near", `Quick, test_decision_small_stays_near);
    ("Eq2: large offloads", `Quick, test_decision_large_goes_in_memory);
    ("Eq2: no layout", `Quick, test_decision_no_layout);
    ("Eq2: exact tie stays near", `Quick, test_decision_exact_tie_stays_near);
    ("Eq2: force-imc override", `Quick, test_decision_override_force_imc);
    ("Eq2: force-core override", `Quick, test_decision_override_force_core);
    ("Eq2: override needs a layout", `Quick, test_decision_override_ignored_without_layout);
    ("Eq2: policy resolution", `Quick, test_decision_policy_resolve);
    ("Eq2: memoized JIT", `Quick, test_decision_memoized_jit_lowers_threshold);
  ]
