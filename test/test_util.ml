(* Unit and property tests for the utility library. *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues" (Rng.int64 a) (Rng.int64 b)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_int_unbiased () =
  (* bound = 3 * 2^60 does not divide the 2^62 draw range: the old
     [bits mod bound] gave values below 2^60 probability 1/2 instead of
     1/3. With 3000 draws the uniform fraction is 1/3 +- ~0.03, so 0.40
     cleanly separates the distributions. *)
  let bound = 3 * (1 lsl 60) in
  let rng = Rng.create 9001 in
  let n = 3000 in
  let low = ref 0 in
  for _ = 1 to n do
    let v = Rng.int rng bound in
    if v < 0 || v >= bound then Alcotest.fail "out of bounds";
    if v < 1 lsl 60 then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "low-third fraction %.3f stays near 1/3" frac)
    true
    (frac > 0.26 && frac < 0.40)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in bounds" ~count:500
    QCheck.(pair small_int (float_range 0.1 100.0))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

let feq = Alcotest.float 1e-9

let test_stats () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check feq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check feq "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.check feq "median even" 1.5 (Stats.median [ 1.0; 2.0 ]);
  Alcotest.check feq "empty mean" 0.0 (Stats.mean []);
  Alcotest.check feq "geomean skips nonpositive" 2.0 (Stats.geomean [ 2.0; -1.0; 0.0 ]);
  Alcotest.check feq "ratio by zero" 0.0 (Stats.ratio 1.0 0.0);
  Alcotest.check feq "percent" 50.0 (Stats.percent ~part:1.0 ~whole:2.0)

let test_stats_stddev () =
  Alcotest.check (Alcotest.float 1e-6) "stddev" 2.0
    (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_quantile () =
  let xs = [ 3.0; 1.0; 2.0; 4.0 ] in
  Alcotest.check feq "q0 is min" 1.0 (Stats.quantile 0.0 xs);
  Alcotest.check feq "q1 is max" 4.0 (Stats.quantile 1.0 xs);
  Alcotest.check feq "q0.5 agrees with median" (Stats.median xs)
    (Stats.quantile 0.5 xs);
  Alcotest.check feq "type-7 interpolation" 1.75 (Stats.quantile 0.25 xs);
  Alcotest.check feq "clamped above" 4.0 (Stats.quantile 2.0 xs);
  Alcotest.check feq "clamped below" 1.0 (Stats.quantile (-1.0) xs);
  Alcotest.check feq "empty" 0.0 (Stats.quantile 0.5 [])

let test_stats_histogram () =
  let lo, hi, counts = Stats.histogram ~buckets:4 [ 0.0; 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.check feq "lo" 0.0 lo;
  Alcotest.check feq "hi" 4.0 hi;
  Alcotest.(check (array int)) "max lands in the last bucket"
    [| 1; 1; 1; 2 |] counts;
  let _, _, c1 = Stats.histogram ~buckets:3 [ 5.0; 5.0 ] in
  Alcotest.(check (array int)) "degenerate range -> bucket 0" [| 2; 0; 0 |] c1;
  let lo, hi, c2 = Stats.histogram ~buckets:2 [] in
  Alcotest.check feq "empty lo" 0.0 lo;
  Alcotest.check feq "empty hi" 0.0 hi;
  Alcotest.(check (array int)) "empty counts" [| 0; 0 |] c2

let test_stats_nan_safe () =
  (* a NaN (or infinity) in the sample must not scramble the ranking:
     non-finite values are dropped before sorting with Float.compare *)
  let dirty = [ 3.0; nan; 1.0; infinity; 2.0; neg_infinity; 4.0 ] in
  let clean = [ 3.0; 1.0; 2.0; 4.0 ] in
  Alcotest.check feq "median ignores non-finite" (Stats.median clean)
    (Stats.median dirty);
  Alcotest.check feq "quantile ignores non-finite"
    (Stats.quantile 0.95 clean) (Stats.quantile 0.95 dirty);
  Alcotest.(check bool) "median of dirty list is finite" true
    (Float.is_finite (Stats.median dirty));
  Alcotest.check feq "all-NaN median is 0" 0.0 (Stats.median [ nan; nan ]);
  let lo, hi, counts = Stats.histogram ~buckets:4 (nan :: [ 0.0; 1.0; 2.0; 3.0; 4.0 ]) in
  Alcotest.check feq "histogram lo unpoisoned" 0.0 lo;
  Alcotest.check feq "histogram hi unpoisoned" 4.0 hi;
  Alcotest.(check int) "histogram counts only finite samples" 5
    (Array.fold_left ( + ) 0 counts)

let test_stats_minmax_nan_safe () =
  (* min/max share quantile's finite filtering: one NaN latency sample
     must not poison the reported max while p99 looks healthy *)
  let dirty = [ 3.0; nan; 1.0; infinity; 2.0; neg_infinity; 4.0 ] in
  Alcotest.check feq "minimum ignores non-finite" 1.0 (Stats.minimum dirty);
  Alcotest.check feq "maximum ignores non-finite" 4.0 (Stats.maximum dirty);
  Alcotest.(check bool) "maximum with NaN tail is finite" true
    (Float.is_finite (Stats.maximum [ 2.0; nan ]));
  Alcotest.check feq "NaN-leading fold is unpoisoned" 2.0
    (Stats.maximum [ nan; 2.0; 1.0 ]);
  Alcotest.check feq "all-non-finite maximum is 0" 0.0
    (Stats.maximum [ nan; infinity ]);
  Alcotest.check feq "empty minimum is 0" 0.0 (Stats.minimum []);
  (* max never below p99 on the same sample: the regression this guards —
     NaN max with healthy quantiles — inverts this ordering *)
  let sample = [ 5.0; 1.0; nan; 9.0; 3.0 ] in
  Alcotest.(check bool) "max >= p99 on a dirty sample" true
    (Stats.maximum sample >= Stats.quantile 0.99 sample)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"Stats.quantile is monotone in q" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 30) (float_range (-1e6) 1e6))
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (xs, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile lo xs <= Stats.quantile hi xs)

let prop_histogram_total =
  QCheck.Test.make ~name:"Stats.histogram counts sum to n" ~count:300
    QCheck.(
      pair (int_range 1 16)
        (list_of_size Gen.(int_range 0 50) (float_range (-1e6) 1e6)))
    (fun (buckets, xs) ->
      let _, _, counts = Stats.histogram ~buckets xs in
      Array.fold_left ( + ) 0 counts = List.length xs)

let test_json_float_total () =
  Alcotest.(check string) "nan prints as null" "null" (Json.fmt_float nan);
  Alcotest.(check string) "inf prints as null" "null" (Json.fmt_float infinity);
  Alcotest.(check string) "-inf prints as null" "null"
    (Json.fmt_float neg_infinity);
  Alcotest.(check string) "integral" "3" (Json.fmt_float 3.0);
  (* a document carrying a non-finite number stays parseable and the
     value round-trips as Null *)
  match Json.parse (Json.to_string (Json.Obj [ ("x", Json.Num infinity) ])) with
  | Error e -> Alcotest.failf "non-finite document unparseable: %s" e
  | Ok j ->
    Alcotest.(check bool) "round-trips as Null" true
      (Json.member "x" j = Some Json.Null)

let prop_json_float_roundtrip =
  QCheck.Test.make ~name:"Json.fmt_float round-trips finite floats" ~count:500
    QCheck.float (fun f ->
      if Float.is_finite f then float_of_string (Json.fmt_float f) = f
      else Json.fmt_float f = "null")

(* ---- Clock: monotonic clamp ---- *)

let test_clock_monotonic () =
  (* a simulated backwards wall-clock step (NTP) must never yield a
     negative span: the clamp freezes the clock until raw time catches
     up *)
  let timeline = ref [ 100.0; 100.5; 99.0; 99.5; 100.25; 101.0 ] in
  let raw () =
    match !timeline with
    | [] -> 102.0
    | x :: r ->
      timeline := r;
      x
  in
  Fun.protect
    ~finally:(fun () -> Clock.set_raw_source None)
    (fun () ->
      Clock.set_raw_source (Some raw);
      let samples = List.init 6 (fun _ -> Clock.now ()) in
      let rec spans = function
        | a :: (b :: _ as r) -> (b -. a) :: spans r
        | _ -> []
      in
      List.iteri
        (fun i s ->
          Alcotest.(check bool)
            (Printf.sprintf "span %d is non-negative" i)
            true (s >= 0.0))
        (spans samples);
      (* the clamp holds the high-water mark through the backwards step *)
      Alcotest.check feq "clamped at the pre-step maximum" 100.5
        (List.nth samples 2);
      (* and releases once raw time passes it again *)
      Alcotest.check feq "resumes when raw time catches up" 101.0
        (List.nth samples 5);
      Alcotest.(check bool) "ns mirror agrees" true (Clock.now_ns () >= 101.0 *. 1e9))

(* ---- Vec: clear must not retain elements ---- *)

(* allocate behind a function boundary so the local binding cannot keep
   the element alive past the push *)
let[@inline never] vec_push_tracked v w =
  let big = Array.make 4096 7 in
  Vec.push v big;
  Weak.set w 0 (Some big)

let test_vec_clear_releases () =
  let v = Vec.create () in
  let w = Weak.create 1 in
  vec_push_tracked v w;
  Vec.push v [| 1 |];
  Alcotest.(check int) "two elements" 2 (Vec.length v);
  Alcotest.(check bool) "tracked element live before clear" true
    (Weak.get w 0 <> None);
  Vec.clear v;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool)
    "cleared element is collectable (no retention in spare capacity)" true
    (Weak.get w 0 = None);
  (* the vector is reusable after a clear *)
  Vec.push v [| 2 |];
  Alcotest.(check int) "push after clear" 1 (Vec.length v);
  Alcotest.(check int) "element readable" 2 (Vec.get v 0).(0)

let test_table_render () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "y" ];
  let _ = Table.add_float_row t "row" [ 1.5; 2.0 ] in
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| x   | y   |    |"
                                                          || String.length l > 0))

let test_table_float_fmt () =
  Alcotest.(check string) "integer-valued" "2" (Table.fmt_float 2.0);
  Alcotest.(check string) "zero" "0" (Table.fmt_float 0.0);
  Alcotest.(check string) "small" "1.500e-04" (Table.fmt_float 0.00015);
  Alcotest.(check string) "fraction" "1.250" (Table.fmt_float 1.25)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng copy", `Quick, test_rng_copy);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutes);
    ("rng int is unbiased", `Quick, test_rng_int_unbiased);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_rng_int_bounds;
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_rng_float_bounds;
    ("stats basics", `Quick, test_stats);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats quantile", `Quick, test_stats_quantile);
    ("stats histogram", `Quick, test_stats_histogram);
    ("stats nan safety", `Quick, test_stats_nan_safe);
    ("stats min/max nan safety", `Quick, test_stats_minmax_nan_safe);
    ("clock monotonic clamp", `Quick, test_clock_monotonic);
    ("vec clear releases elements", `Quick, test_vec_clear_releases);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_quantile_monotone;
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_histogram_total;
    ("json float is total", `Quick, test_json_float_total);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_json_float_roundtrip;
    ("table render", `Quick, test_table_render);
    ("table float format", `Quick, test_table_float_fmt);
  ]
