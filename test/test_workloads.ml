(* Workload construction: Table 3/4 parameters, data generators, catalog
   coverage, and a randomized compiler soundness property over generated
   affine kernels. *)

module W = Infinity_stream.Workload
module Cat = Infs_workloads.Catalog

let test_catalog_covers_table3 () =
  let labels = List.map (fun (e : Cat.entry) -> e.label) (Cat.table3 ()) in
  Alcotest.(check (list string))
    "table 3 suite"
    [
      "stencil1d"; "stencil2d"; "stencil3d"; "dwt2d"; "gauss_elim"; "conv2d";
      "conv3d"; "mm"; "kmeans"; "gather_mlp"; "attention"; "layernorm"; "mlp";
    ]
    labels;
  (* the multi-dataflow entries carry both variants *)
  List.iter
    (fun (e : Cat.entry) ->
      if List.mem e.label [ "mm"; "kmeans"; "gather_mlp" ] then
        Alcotest.(check int) (e.label ^ " has 2 dataflows") 2
          (List.length e.variants))
    (Cat.table3 ())

let test_paper_sizes () =
  let find label =
    List.find (fun (e : Cat.entry) -> e.label = label) (Cat.table3 ())
  in
  let params (e : Cat.entry) = (snd (List.hd e.variants)).W.params in
  Alcotest.(check (option int)) "stencil1d 4M" (Some 4_194_304)
    (List.assoc_opt "N" (params (find "stencil1d")));
  Alcotest.(check (option int)) "mm 2k" (Some 2048)
    (List.assoc_opt "N" (params (find "mm")));
  Alcotest.(check (option int)) "kmeans 32k points" (Some 32768)
    (List.assoc_opt "P" (params (find "kmeans")));
  Alcotest.(check (option int)) "kmeans 128 dims" (Some 128)
    (List.assoc_opt "D" (params (find "kmeans")))

let test_programs_validate () =
  List.iter
    (fun (name, w) ->
      match Ast.validate w.W.prog with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    (Cat.all_variants (Cat.table3 ())
    @ [
        ("pointnet/ssg", Infs_workloads.Pointnet.ssg ());
        ("pointnet/msg", Infs_workloads.Pointnet.msg ());
      ])

let test_table4_params () =
  let t = Infs_workloads.Pointnet.table4 in
  Alcotest.(check int) "nine SAs" 9 (List.length t);
  let sa1 = List.assoc "SA1" t in
  Alcotest.(check int) "SA1 K" 512 sa1.Infs_workloads.Pointnet.sa_k;
  Alcotest.(check (list int)) "SA1 dims" [ 64; 64; 128 ] sa1.sa_dims;
  let sa3 = List.assoc "SA3" t in
  Alcotest.(check int) "SA3 K=1" 1 sa3.sa_k;
  Alcotest.(check bool) "SA3 radius inf" true (Float.is_integer sa3.sa_r = false || sa3.sa_r = infinity)

let test_data_generators () =
  let u = Infs_workloads.Data.uniform ~seed:1 1000 in
  Alcotest.(check bool) "uniform in [0,1)" true
    (Array.for_all (fun x -> x >= 0.0 && x < 1.0) u);
  let u2 = Infs_workloads.Data.uniform ~seed:1 1000 in
  Alcotest.(check bool) "deterministic" true (u = u2);
  let ix = Infs_workloads.Data.indices ~seed:2 ~bound:50 1000 in
  Alcotest.(check bool) "indices in range" true
    (Array.for_all (fun x -> x >= 0.0 && x < 50.0 && Float.is_integer x) ix);
  let d = Infs_workloads.Data.diag_dominant ~seed:3 16 in
  let row_ok i =
    let diag = Float.abs d.((i * 16) + i) in
    let off =
      List.fold_left
        (fun acc j -> if j = i then acc else acc +. Float.abs d.((i * 16) + j))
        0.0
        (List.init 16 Fun.id)
    in
    diag > off
  in
  Alcotest.(check bool) "diagonally dominant" true
    (List.for_all row_ok (List.init 16 Fun.id));
  Alcotest.(check (float 0.0)) "iota" 5.0 (Infs_workloads.Data.iota 8).(5)

let test_default_check_arrays () =
  let w = Infs_workloads.Micro.vec_add ~n:64 in
  Alcotest.(check (list string)) "kernel targets" [ "C" ] w.W.check_arrays

(* Randomized compiler soundness: generate small affine kernels (windowed
   loads with random constant coefficients and offsets), then check that
   extract -> e-graph optimize -> tDFG evaluation matches the interpreter. *)
let random_kernel_case =
  let gen =
    QCheck.Gen.(
      let term = triple (int_range (-2) 2) (int_range (-2) 2) (int_range 1 9) in
      pair (list_size (int_range 1 5) term) (int_range 0 1000))
  in
  QCheck.make
    ~print:(fun (taps, seed) ->
      Printf.sprintf "seed=%d taps=%s" seed
        (String.concat ";"
           (List.map (fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c) taps)))
    gen

let prop_random_kernels_sound =
  QCheck.Test.make ~name:"random affine kernels: optimize preserves semantics"
    ~count:60 random_kernel_case (fun (taps, seed) ->
      let open Ast in
      let n = Symaff.var "N" in
      let rhs =
        List.fold_left
          (fun acc (di, dj, coeff) ->
            let oi = Stdlib.( + ) di 2 and oj = Stdlib.( + ) dj 2 in
            let term =
              fconst (float_of_int coeff /. 8.0)
              * load "A" [ i "r" +% oi; i "j" +% oj ]
            in
            match acc with None -> Some term | Some e -> Some (e + term))
          None taps
        |> Option.get
      in
      let prog =
        program ~name:"rand" ~params:[ "N" ]
          ~arrays:[ array "A" Dtype.Fp32 [ n; n ]; array "B" Dtype.Fp32 [ n; n ] ]
          [
            Kernel
              (kernel "rand"
                 [ loop "r" (c 0) (n +% -4); loop "j" (c 0) (n +% -4) ]
                 [ store "B" [ i "r"; i "j" ] rhs ]);
          ]
      in
      let k = List.hd (kernels prog) in
      match Frontend.extract prog k with
      | Error _ -> false
      | Ok g ->
        let opt, _ = Extract.optimize ~arrays:(Frontend.array_extents prog) g in
        let size = 12 in
        let input = Infs_workloads.Data.uniform ~seed (Stdlib.( * ) size size) in
        let run graph =
          match Interp.create prog ~params:[ ("N", size) ] with
          | Error _ -> None
          | Ok env ->
            Interp.set_array env "A" input;
            (try
               Interp.run ~on_kernel:(fun env _ -> Tdfg_eval.eval graph env) env;
               Some (Interp.get_array env "B")
             with Failure _ -> None)
        in
        (match (run g, run opt) with
        | Some a, Some b ->
          Array.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-4) a b
        | _ -> false))



let functional = { Infinity_stream.Engine.default_options with functional = true }

let check_extra p w =
  match Infinity_stream.Engine.run ~options:functional p w with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    match r.Infinity_stream.Report.correctness with
    | `Checked err -> Alcotest.(check bool) "correct" true (err < 1e-3)
    | `Skipped -> Alcotest.fail "expected check")

let test_extras_functional () =
  let open Infinity_stream.Engine in
  List.iter
    (fun w -> List.iter (fun p -> check_extra p w) [ Base; Near_l3; In_l3; Inf_s ])
    [
      Infs_workloads.Extras.bitscan ~n:1024 ~threshold:500.0;
      Infs_workloads.Extras.saxpy ~n:1024 ~a:2.5;
      Infs_workloads.Extras.histogram ~n:1024 ~bins:32;
    ]

let test_bitscan_int_latency () =
  (* the int32 scan's in-memory compute is far cheaper than an fp32 one *)
  let opts =
    {
      Infinity_stream.Engine.default_options with
      warm_data = true;
      pre_transposed = true;
      charge_jit = false;
    }
  in
  let scan =
    Infinity_stream.Engine.run_exn ~options:opts Infinity_stream.Engine.In_l3
      (Infs_workloads.Extras.bitscan ~n:4_194_304 ~threshold:500.0)
  in
  let fp =
    Infinity_stream.Engine.run_exn ~options:opts Infinity_stream.Engine.In_l3
      (Infs_workloads.Micro.vec_add ~n:4_194_304)
  in
  Alcotest.(check bool) "int scan much cheaper than fp add" true
    (scan.Infinity_stream.Report.cycles *. 3.0 < fp.Infinity_stream.Report.cycles)

let test_histogram_stays_off_srams () =
  (* pure irregular scatter: Inf-S must keep it near-memory *)
  let r =
    Infinity_stream.Engine.run_exn Infinity_stream.Engine.Inf_s
      (Infs_workloads.Extras.histogram ~n:1_000_000 ~bins:1024)
  in
  Alcotest.(check (Alcotest.float 0.01)) "no in-memory ops" 0.0
    r.Infinity_stream.Report.in_mem_op_fraction

let suite =
  [
    ("catalog covers Table 3", `Quick, test_catalog_covers_table3);
    ("paper sizes", `Quick, test_paper_sizes);
    ("all suite programs validate", `Quick, test_programs_validate);
    ("Table 4 parameters", `Quick, test_table4_params);
    ("data generators", `Quick, test_data_generators);
    ("default check arrays", `Quick, test_default_check_arrays);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) ~long:true prop_random_kernels_sound;
    ("extras functional", `Quick, test_extras_functional);
    ("bitscan int latency", `Quick, test_bitscan_int_latency);
    ("histogram stays near-memory", `Quick, test_histogram_stays_off_srams);
  ]
