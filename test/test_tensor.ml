(* Hyperrectangles (incl. paper Algorithm 1) and the dense evaluator. *)

let rect ranges = Hyperrect.of_ranges ranges

let test_basics () =
  let r = rect [ (0, 4); (2, 5) ] in
  Alcotest.(check int) "dims" 2 (Hyperrect.dims r);
  Alcotest.(check int) "volume" 12 (Hyperrect.volume r);
  Alcotest.(check (array int)) "shape" [| 4; 3 |] (Hyperrect.shape r);
  Alcotest.(check bool) "mem" true (Hyperrect.mem r [| 3; 4 |]);
  Alcotest.(check bool) "not mem" false (Hyperrect.mem r [| 4; 4 |]);
  Alcotest.(check string) "to_string" "[0,4)x[2,5)" (Hyperrect.to_string r)

let test_make_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Hyperrect.make: lo > hi")
    (fun () -> ignore (Hyperrect.make ~lo:[| 2 |] ~hi:[| 1 |]))

let test_intersect () =
  let a = rect [ (0, 4) ] and b = rect [ (2, 6) ] in
  (match Hyperrect.intersect a b with
  | Some r -> Alcotest.(check string) "overlap" "[2,4)" (Hyperrect.to_string r)
  | None -> Alcotest.fail "expected overlap");
  let c = rect [ (4, 6) ] in
  Alcotest.(check bool) "disjoint" true (Hyperrect.intersect a c = None)

let test_bounding_contains () =
  let a = rect [ (0, 2); (0, 2) ] and b = rect [ (3, 5); (1, 4) ] in
  let bb = Hyperrect.bounding a b in
  Alcotest.(check string) "bounding" "[0,5)x[0,4)" (Hyperrect.to_string bb);
  Alcotest.(check bool) "contains a" true (Hyperrect.contains ~outer:bb ~inner:a);
  Alcotest.(check bool) "not contains" false (Hyperrect.contains ~outer:a ~inner:bb)

let test_shift () =
  let a = rect [ (1, 3) ] in
  Alcotest.(check string) "shift" "[3,5)"
    (Hyperrect.to_string (Hyperrect.shift a ~dim:0 ~dist:2))

let test_linear_index_roundtrip () =
  let r = rect [ (1, 4); (2, 6) ] in
  Hyperrect.iter_points r ~f:(fun p ->
      let i = Hyperrect.linear_index r p in
      Alcotest.(check (array int)) "roundtrip" p (Hyperrect.point_of_linear r i))

let test_fold_points_order () =
  let r = rect [ (0, 2); (0, 2) ] in
  let pts = Hyperrect.fold_points r ~init:[] ~f:(fun acc p -> Array.copy p :: acc) in
  Alcotest.(check int) "count" 4 (List.length pts);
  Alcotest.(check (array int)) "row-major first" [| 0; 0 |] (List.nth pts 3);
  Alcotest.(check (array int)) "row-major second" [| 0; 1 |] (List.nth pts 2)

(* Paper Fig. 9's example: [0,4)x[0,3) with 2x2 tiles decomposes into the
   aligned block [0,4)x[0,2) and the boundary [0,4)x[2,3). *)
let test_decompose_fig9 () =
  let pieces =
    Hyperrect.decompose (rect [ (0, 4); (0, 3) ]) ~tile:[| 2; 2 |]
    |> List.map Hyperrect.to_string
    |> List.sort compare
  in
  Alcotest.(check (list string)) "fig 9" [ "[0,4)x[0,2)"; "[0,4)x[2,3)" ] pieces

let test_decompose_aligned_kept_whole () =
  let pieces = Hyperrect.decompose (rect [ (0, 8) ]) ~tile:[| 4 |] in
  Alcotest.(check int) "aligned middle runs stay whole" 1 (List.length pieces)

let test_decompose_head_middle_tail () =
  let pieces =
    Hyperrect.decompose (rect [ (1, 11) ]) ~tile:[| 4 |]
    |> List.map Hyperrect.to_string
  in
  Alcotest.(check (list string)) "h/m/t" [ "[1,4)"; "[4,8)"; "[8,11)" ] pieces

let test_decompose_within_tile () =
  let pieces = Hyperrect.decompose (rect [ (1, 3) ]) ~tile:[| 4 |] in
  Alcotest.(check int) "single piece" 1 (List.length pieces)

let rect_gen =
  QCheck.Gen.(
    let range = pair (int_range 0 20) (int_range 1 15) in
    map
      (fun ranges ->
        List.map (fun (lo, len) -> (lo, lo + len)) ranges)
      (list_size (int_range 1 3) range))

let tile_gen n = QCheck.Gen.(list_size (return n) (int_range 1 6))

let decompose_case =
  QCheck.make
    ~print:(fun (ranges, tile) ->
      Printf.sprintf "%s tile=%s"
        (Hyperrect.to_string (Hyperrect.of_ranges ranges))
        (String.concat "x" (List.map string_of_int tile)))
    QCheck.Gen.(
      rect_gen >>= fun ranges ->
      tile_gen (List.length ranges) >>= fun tile -> return (ranges, tile))

(* Property: Algorithm 1 partitions the box — volumes sum, pieces are
   disjoint, every piece is inside, and each piece never straddles an
   unaligned tile boundary. *)
let prop_decompose_partition =
  QCheck.Test.make ~name:"decompose partitions the box" ~count:300 decompose_case
    (fun (ranges, tile) ->
      let r = Hyperrect.of_ranges ranges in
      let tile = Array.of_list tile in
      let pieces = Hyperrect.decompose r ~tile in
      let vol_ok =
        List.fold_left (fun acc p -> acc + Hyperrect.volume p) 0 pieces
        = Hyperrect.volume r
      in
      let inside = List.for_all (fun p -> Hyperrect.contains ~outer:r ~inner:p) pieces in
      let rec disjoint = function
        | [] -> true
        | p :: rest ->
          List.for_all (fun q -> Hyperrect.intersect p q = None) rest
          && disjoint rest
      in
      vol_ok && inside && disjoint pieces)

let prop_decompose_boundary_pieces_fit_one_tile =
  QCheck.Test.make ~name:"unaligned pieces fit one tile row" ~count:300
    decompose_case (fun (ranges, tile) ->
      let r = Hyperrect.of_ranges ranges in
      let tile = Array.of_list tile in
      let pieces = Hyperrect.decompose r ~tile in
      List.for_all
        (fun p ->
          List.for_all
            (fun d ->
              let lo = Hyperrect.lo p d and hi = Hyperrect.hi p d in
              let t = tile.(d) in
              let aligned = lo mod t = 0 && hi mod t = 0 in
              let within_one = lo / t = (hi - 1) / t in
              aligned || within_one)
            (List.init (Hyperrect.dims p) Fun.id))
        pieces)

(* Dense tensors *)

let feq = Alcotest.float 1e-6

let test_dense_create_get () =
  let r = rect [ (1, 3); (0, 2) ] in
  let d = Dense.create r ~f:(fun p -> float_of_int ((10 * p.(0)) + p.(1))) in
  Alcotest.check feq "value" 21.0 (Dense.get d [| 2; 1 |]);
  Alcotest.check_raises "outside"
    (Invalid_argument "Dense.get: point outside [1,3)x[0,2)") (fun () ->
      ignore (Dense.get d [| 0; 0 |]))

let test_dense_map2_intersection () =
  let a = Dense.fill (rect [ (0, 4) ]) 1.0 in
  let b = Dense.fill (rect [ (2, 6) ]) 2.0 in
  let s = Dense.map2 a b ~f:( +. ) in
  Alcotest.(check string) "domain" "[2,4)" (Hyperrect.to_string (Dense.domain s));
  Alcotest.check feq "sum" 3.0 (Dense.get s [| 3 |])

let test_dense_shift () =
  let a = Dense.create (rect [ (0, 3) ]) ~f:(fun p -> float_of_int p.(0)) in
  let moved = Hyperrect.shift (Dense.domain a) ~dim:0 ~dist:2 in
  let s = Dense.shift a ~dim:0 ~dist:2 ~bound:moved in
  Alcotest.check feq "shifted value" 1.0 (Dense.get s [| 3 |])

let test_dense_broadcast () =
  let a = Dense.create (rect [ (0, 2); (3, 4) ]) ~f:(fun p -> float_of_int p.(0)) in
  let b = Dense.broadcast a ~dim:1 ~lo:0 ~hi:4 in
  Alcotest.check feq "broadcast" 1.0 (Dense.get b [| 1; 2 |]);
  Alcotest.(check int) "volume" 8 (Hyperrect.volume (Dense.domain b))

let test_dense_broadcast_requires_extent1 () =
  let a = Dense.fill (rect [ (0, 2) ]) 1.0 in
  Alcotest.check_raises "extent"
    (Invalid_argument "Dense.broadcast: source extent along dim must be 1")
    (fun () -> ignore (Dense.broadcast a ~dim:0 ~lo:0 ~hi:4))

let test_dense_reduce () =
  let a = Dense.create (rect [ (0, 3); (0, 2) ]) ~f:(fun p -> float_of_int p.(0)) in
  let s = Dense.reduce a ~dim:0 ~f:( +. ) ~init:0.0 in
  Alcotest.(check string) "collapsed" "[0,1)x[0,2)"
    (Hyperrect.to_string (Dense.domain s));
  Alcotest.check feq "sum" 3.0 (Dense.get s [| 0; 1 |])

let test_dense_fp32_rounding () =
  let x = Dense.fp32 0.1 in
  Alcotest.(check bool) "rounded to single" true (x <> 0.1);
  Alcotest.(check bool) "close" true (Float.abs (x -. 0.1) < 1e-7)

let test_dense_equal_within () =
  let a = Dense.fill (rect [ (0, 4) ]) 1.0 in
  let b = Dense.fill (rect [ (0, 4) ]) (1.0 +. 1e-9) in
  Alcotest.(check bool) "close" true (Dense.equal_within ~eps:1e-6 a b)

let suite =
  [
    ("hyperrect basics", `Quick, test_basics);
    ("hyperrect invalid", `Quick, test_make_invalid);
    ("hyperrect intersect", `Quick, test_intersect);
    ("hyperrect bounding/contains", `Quick, test_bounding_contains);
    ("hyperrect shift", `Quick, test_shift);
    ("linear index roundtrip", `Quick, test_linear_index_roundtrip);
    ("fold order row-major", `Quick, test_fold_points_order);
    ("decompose: paper Fig 9", `Quick, test_decompose_fig9);
    ("decompose: aligned kept whole", `Quick, test_decompose_aligned_kept_whole);
    ("decompose: head/middle/tail", `Quick, test_decompose_head_middle_tail);
    ("decompose: within one tile", `Quick, test_decompose_within_tile);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_decompose_partition;
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_decompose_boundary_pieces_fit_one_tile;
    ("dense create/get", `Quick, test_dense_create_get);
    ("dense map2 intersection", `Quick, test_dense_map2_intersection);
    ("dense shift", `Quick, test_dense_shift);
    ("dense broadcast", `Quick, test_dense_broadcast);
    ("dense broadcast extent-1", `Quick, test_dense_broadcast_requires_extent1);
    ("dense reduce", `Quick, test_dense_reduce);
    ("dense fp32 rounding", `Quick, test_dense_fp32_rounding);
    ("dense equal_within", `Quick, test_dense_equal_within);
  ]
