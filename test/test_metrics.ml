(* The metrics subsystem (infs_metrics):
   - registry behaviour: null no-op, counter/gauge accumulation, log2
     histogram bucketing, snapshot ordering, JSON / Prometheus exposition,
   - reconciliation: metric series equal the engine's Report / Breakdown /
     Traffic numbers with 0.0 tolerance on every catalog workload,
   - live/replay agreement: replaying a JSONL trace through Trace_replay
     reproduces the live registry bit-for-bit (minus live-only series),
   - a golden bottleneck report: `analyze` output on a committed trace is
     byte-stable. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module Cat = Infs_workloads.Catalog

(* ---- registry unit tests ---- *)

let test_null () =
  let m = Metrics.null in
  Alcotest.(check bool) "disabled" false (Metrics.enabled m);
  Metrics.incr m "a" 1.0;
  Metrics.gauge_add m "b" 2.0;
  Metrics.observe m "c" 3.0;
  Metrics.Sim.sync_barrier m ~cycles:4.0;
  Alcotest.(check int) "no calls" 0 (Metrics.calls m);
  Alcotest.(check (float 0.0)) "no value" 0.0 (Metrics.value m "a");
  Alcotest.(check int) "empty snapshot" 0 (List.length (Metrics.snapshot m))

let test_counters_and_sorting () =
  let m = Metrics.create () in
  Alcotest.(check bool) "enabled" true (Metrics.enabled m);
  Metrics.incr m ~labels:[ ("cat", "data") ] "noc.bytes" 64.0;
  Metrics.incr m ~labels:[ ("cat", "control") ] "noc.bytes" 8.0;
  Metrics.incr m ~labels:[ ("cat", "data") ] "noc.bytes" 32.0;
  Metrics.gauge_add m "gauge" (-1.5);
  Alcotest.(check (float 0.0)) "accumulates" 96.0
    (Metrics.value m ~labels:[ ("cat", "data") ] "noc.bytes");
  Alcotest.(check (float 0.0)) "gauge" (-1.5) (Metrics.value m "gauge");
  Alcotest.(check (float 0.0)) "absent series" 0.0 (Metrics.value m "nope");
  let names =
    List.map
      (fun (s : Metrics.series) ->
        s.Metrics.name
        ^ String.concat "" (List.map (fun (_, v) -> "/" ^ v) s.Metrics.labels))
      (Metrics.snapshot m)
  in
  Alcotest.(check (list string)) "sorted by (name, labels)"
    [ "gauge"; "noc.bytes/control"; "noc.bytes/data" ]
    names;
  Alcotest.(check int) "calls counted" 4 (Metrics.calls m)

let hist_of m name labels =
  match
    List.find_opt
      (fun (s : Metrics.series) ->
        s.Metrics.name = name && s.Metrics.labels = labels)
      (Metrics.snapshot m)
  with
  | Some { Metrics.sample = Metrics.Dist h; _ } -> Some h
  | _ -> None

let test_histogram_bucketing () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "h") [ 3.0; 4.0; 4.5; 0.0; -1.0; 0.75 ];
  match hist_of m "h" [] with
  | None -> Alcotest.fail "histogram series missing"
  | Some h ->
    Alcotest.(check int) "count includes zero bucket" 6 h.Metrics.count;
    Alcotest.(check (float 0.0)) "sum in call order" 11.25 h.Metrics.sum;
    (* buckets are (2^(e-1), 2^e]: 3.0 and 4.0 share ub 4, 4.5 -> 8,
       0.75 -> 1, non-positive samples -> the (0.0, n) zero bucket *)
    Alcotest.(check (list (pair (float 0.0) int)))
      "bucket placement"
      [ (0.0, 2); (1.0, 1); (4.0, 2); (8.0, 1) ]
      h.Metrics.buckets

let test_hist_quantile () =
  let m = Metrics.create () in
  for _ = 1 to 3 do Metrics.observe m "h" 2.0 done;
  Metrics.observe m "h" 100.0;
  match hist_of m "h" [] with
  | None -> Alcotest.fail "histogram series missing"
  | Some h ->
    let p50 = Metrics.hist_quantile h 0.5 in
    Alcotest.(check bool) "p50 inside the (1,2] bucket" true
      (p50 > 1.0 && p50 <= 2.0);
    let p99 = Metrics.hist_quantile h 0.99 in
    Alcotest.(check bool) "p99 in the top bucket" true (p99 > 64.0);
    Alcotest.(check (float 0.0)) "empty histogram" 0.0
      (Metrics.hist_quantile { Metrics.count = 0; sum = 0.0; buckets = [] } 0.5)

let test_json_exposition () =
  let m = Metrics.create () in
  Metrics.incr m ~labels:[ ("cat", "data") ] "noc.bytes" 64.0;
  Metrics.observe m "lat" 3.0;
  let j = Metrics.to_json (Metrics.snapshot m) in
  match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.failf "exposition is not valid JSON: %s" e
  | Ok j2 ->
    Alcotest.(check (option string)) "schema tag" (Some "infs-metrics-1")
      (Option.bind (Json.member "schema" j2) Json.to_str);
    let series = Option.bind (Json.member "series" j2) Json.to_list in
    Alcotest.(check int) "two series" 2 (List.length (Option.get series))

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_prom_exposition () =
  let m = Metrics.create () in
  Metrics.incr m ~labels:[ ("cat", "data") ] "noc.bytes" 64.0;
  Metrics.observe m "imc.cmd_cycles" 3.0;
  Metrics.observe m "imc.cmd_cycles" 5.0;
  let s = Metrics.to_prom (Metrics.snapshot m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains s needle))
    [
      "# TYPE infs_noc_bytes counter";
      "infs_noc_bytes_total{cat=\"data\"} 64";
      "# TYPE infs_imc_cmd_cycles histogram";
      "infs_imc_cmd_cycles_bucket{le=\"4\"} 1";
      "infs_imc_cmd_cycles_bucket{le=\"+Inf\"} 2";
      "infs_imc_cmd_cycles_sum 8";
      "infs_imc_cmd_cycles_count 2";
    ]

(* ---- reconciliation against Report (0.0 tolerance) ---- *)

let run_metered ?(options = E.default_options) p w =
  let m = Metrics.create () in
  let r = E.run_exn ~options:{ options with E.metrics = m } p w in
  (r, m)

let breakdown_pairs (r : R.t) =
  let b = r.R.breakdown in
  [
    ("dram", b.Breakdown.dram); ("jit", b.jit); ("move", b.move);
    ("compute", b.compute); ("final_reduce", b.final_reduce); ("mix", b.mix);
    ("near_mem", b.near_mem); ("core", b.core);
  ]

let hist_sum m name labels =
  match hist_of m name labels with
  | Some h -> h.Metrics.sum
  | None -> 0.0

let check_reconciles (r : R.t) m =
  List.iter
    (fun (cat, want) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "noc.bytes{%s}" cat)
        want
        (Metrics.value m ~labels:[ ("cat", cat) ] "noc.bytes"))
    r.R.noc_bytes;
  List.iter
    (fun (cat, want) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "noc.byte_hops{%s}" cat)
        want
        (Metrics.value m ~labels:[ ("cat", cat) ] "noc.byte_hops"))
    r.R.noc_byte_hops;
  List.iter
    (fun (ch, want) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "local.bytes{%s}" ch)
        want
        (Metrics.value m ~labels:[ ("channel", ch) ] "local.bytes"))
    r.R.local_bytes;
  (* the cycles{cat} histogram accumulates the same charges in the same
     order as Breakdown, so the sums are bit-equal *)
  List.iter
    (fun (cat, want) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "cycles{%s} sum" cat)
        want
        (hist_sum m "cycles" [ ("cat", cat) ]))
    (breakdown_pairs r);
  Alcotest.(check (float 0.0)) "memo hits"
    (float_of_int r.R.jit.memo_hits)
    (Metrics.value m "jit.memo_hits");
  (* the per-link spread redistributes every packet's byte-hops, so the
     links sum back to the category totals (floating point: relative) *)
  let total_bh = List.fold_left (fun a (_, v) -> a +. v) 0.0 r.R.noc_byte_hops in
  let link_bh =
    List.fold_left
      (fun acc (s : Metrics.series) ->
        match s with
        | { Metrics.name = "noc.link.byte_hops"; sample = Metrics.Value v; _ } ->
          acc +. v
        | _ -> acc)
      0.0 (Metrics.snapshot m)
  in
  if Float.abs (link_bh -. total_bh) > 1e-6 *. Float.max 1.0 total_bh then
    Alcotest.failf "per-link byte-hops %.17g do not sum to total %.17g"
      link_bh total_bh

let reconcile_tests =
  List.concat_map
    (fun (name, w) ->
      List.map
        (fun p ->
          ( Printf.sprintf "reconcile: %s [%s]" name (E.paradigm_to_string p),
            `Quick,
            fun () ->
              let r, m = run_metered p w in
              check_reconciles r m ))
        E.all_paradigms)
    (Cat.all_variants (Cat.test_scale ()))

(* ---- live vs replay agreement ---- *)

(* Series only the live simulator can produce (no corresponding trace
   event, by design: the golden traces pin the event stream). *)
let live_only (s : Metrics.series) =
  String.length s.Metrics.name >= 5 && String.sub s.Metrics.name 0 5 = "near."

let series_sig (s : Metrics.series) =
  Json.to_string
    (Metrics.to_json [ s ])

let test_replay_agreement () =
  List.iter
    (fun (w, p) ->
      let buf = Buffer.create 4096 in
      let trace = Trace.to_buffer Trace.Jsonl buf in
      let m = Metrics.create () in
      let _r =
        E.run_exn ~options:{ E.default_options with E.trace; metrics = m } p w
      in
      Trace.close trace;
      let rp = Trace_replay.create () in
      String.split_on_char '\n' (Buffer.contents buf)
      |> List.iter (fun line ->
             match Trace_replay.feed_line rp line with
             | Ok () -> ()
             | Error e -> Alcotest.failf "replay rejected %s: %s" line e);
      let live =
        List.filter (fun s -> not (live_only s)) (Metrics.snapshot m)
      in
      let replayed = Metrics.snapshot (Trace_replay.metrics rp) in
      Alcotest.(check int)
        (Printf.sprintf "%s [%s]: series count" w.Infinity_stream.Workload.wname
           (E.paradigm_to_string p))
        (List.length live) (List.length replayed);
      List.iter2
        (fun l r ->
          if series_sig l <> series_sig r then
            Alcotest.failf "series diverges\n  live:   %s\n  replay: %s"
              (series_sig l) (series_sig r))
        live replayed)
    [
      (Infs_workloads.Stencil.stencil1d ~iters:3 ~n:2048, E.Inf_s);
      (Infs_workloads.Micro.vec_add ~n:16384, E.In_l3);
      (Infs_workloads.Mm.mm_outer ~n:16, E.Near_l3);
      (Infs_workloads.Micro.array_sum ~n:4096, E.Base);
    ]

(* ---- golden bottleneck report ---- *)

let golden path =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) path;
      path;
      Filename.concat "test" path;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_analyze () =
  let rp = Trace_replay.create () in
  let ic = open_in (golden "golden/stencil1d_inf_s.jsonl") in
  (match Trace_replay.feed_channel rp ic with
  | Ok _ -> close_in ic
  | Error e ->
    close_in ic;
    Alcotest.failf "replay failed: %s" e);
  let got = Trace_replay.report ~top:8 rp in
  let want = read_file (golden "golden/analyze_stencil1d_inf_s.txt") in
  if got <> want then begin
    let lines s = String.split_on_char '\n' s in
    let rec first_diff i = function
      | g :: gs, w :: ws -> if g = w then first_diff (i + 1) (gs, ws) else (i, g, w)
      | g :: _, [] -> (i, g, "<end of golden>")
      | [], w :: _ -> (i, "<end of report>", w)
      | [], [] -> (i, "<equal?>", "<equal?>")
    in
    let i, g, w = first_diff 1 (lines got, lines want) in
    Alcotest.failf
      "analyze report diverges from golden at line %d\n  got:    %s\n  golden: %s\n\
       If intentional, regenerate with:\n\
      \  dune exec bin/infs_run.exe -- analyze test/golden/stencil1d_inf_s.jsonl \
       -o test/golden/analyze_stencil1d_inf_s.txt"
      i g w
  end

let suite =
  [
    ("null registry", `Quick, test_null);
    ("counters + snapshot order", `Quick, test_counters_and_sorting);
    ("histogram bucketing", `Quick, test_histogram_bucketing);
    ("histogram quantile", `Quick, test_hist_quantile);
    ("json exposition", `Quick, test_json_exposition);
    ("prometheus exposition", `Quick, test_prom_exposition);
    ("live = replay", `Quick, test_replay_agreement);
    ("golden analyze report", `Quick, test_golden_analyze);
  ]
  @ reconcile_tests
