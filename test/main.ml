(* Suites run in sorted-name order, so the execution order (and therefore
   any cross-suite interaction with shared process state, e.g. the
   compile cache) is deterministic and independent of how this list is
   edited. The qcheck seed is resolved once in Qcheck_seed (env
   QCHECK_SEED or a printed random draw) and every property test starts
   from a fresh state of that seed, so a failure replays exactly with
   QCHECK_SEED=<printed seed> dune runtest. *)

let () =
  ignore Qcheck_seed.seed;
  Alcotest.run "infinity-stream"
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       [
         ("util", Test_util.suite);
         ("tensor", Test_tensor.suite);
         ("isa", Test_isa.suite);
         ("lang", Test_lang.suite);
         ("tdfg", Test_tdfg.suite);
         ("egraph", Test_egraph.suite);
         ("compiler", Test_compiler.suite);
         ("runtime", Test_runtime.suite);
         ("sim", Test_sim.suite);
         ("engine", Test_engine.suite);
         ("workloads", Test_workloads.suite);
         ("transformer", Test_transformer.suite);
         ("coverage", Test_catalog_coverage.suite);
         ("edge", Test_edge.suite);
         ("sdfg+rules", Test_sdfg.suite);
         ("fault", Test_fault.suite);
         ("fidelity", Test_fidelity.suite);
         ("identity", Test_identity.suite);
         ("trace", Test_trace.suite);
         ("pool", Test_pool.suite);
         ("metrics", Test_metrics.suite);
         ("serve", Test_serve.suite);
         ("shard", Test_shard.suite);
         ("prof", Test_prof.suite);
         ("tune", Test_tune.suite);
       ])
