let () =
  Alcotest.run "infinity-stream"
    [
      ("util", Test_util.suite);
      ("tensor", Test_tensor.suite);
      ("isa", Test_isa.suite);
      ("lang", Test_lang.suite);
      ("tdfg", Test_tdfg.suite);
      ("egraph", Test_egraph.suite);
      ("compiler", Test_compiler.suite);
      ("runtime", Test_runtime.suite);
      ("sim", Test_sim.suite);
      ("engine", Test_engine.suite);
      ("workloads", Test_workloads.suite);
      ("edge", Test_edge.suite);
      ("sdfg+rules", Test_sdfg.suite);
      ("fidelity", Test_fidelity.suite);
      ("trace", Test_trace.suite);
      ("pool", Test_pool.suite);
      ("metrics", Test_metrics.suite);
    ]
