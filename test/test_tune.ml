(* Autotuning subsystem (lib/tune, DESIGN.md §14):
   - determinism: a tuning run is byte-identical at any jobs count,
   - memoization: a repeat tune() is a cache hit exploring 0 candidates,
   - the winner is never worse than the Eq. 2 / layout-heuristic baseline,
   - JSON round-trips (report line and the persisted cache file),
   - a qcheck property: runs under a tuned decision policy stay
     functionally bit-exact (max-err 0.0) across paradigms and overrides. *)

module T = Infs_tune.Tune
module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module Cat = Infs_workloads.Catalog

let vec_add () = Infs_workloads.Micro.vec_add ~n:16_384
let stencil () = Infs_workloads.Stencil.stencil2d ~iters:2 ~n:48

let tune_exn ?options ?budget ?jobs resolve =
  match T.tune ?options ?budget ?jobs resolve with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let report_bytes r = Json.to_string (T.result_to_json r)

let test_jobs_byte_identity () =
  T.cache_clear ();
  let r1 = tune_exn ~budget:16 ~jobs:1 vec_add in
  T.cache_clear ();
  let r4 = tune_exn ~budget:16 ~jobs:4 vec_add in
  Alcotest.(check string) "jobs:4 report is byte-identical to jobs:1"
    (report_bytes r1) (report_bytes r4)

let test_memoized_second_run () =
  T.cache_clear ();
  let r1 = tune_exn ~budget:16 ~jobs:2 vec_add in
  let r2 = tune_exn ~budget:16 ~jobs:2 vec_add in
  Alcotest.(check bool) "first run is fresh" false r1.T.from_cache;
  Alcotest.(check bool) "second run is a cache hit" true r2.T.from_cache;
  Alcotest.(check int) "cache hit explores 0 new candidates" 0
    (List.length r2.T.explored);
  Alcotest.(check string) "same winner"
    (Json.to_string (T.config_to_json r1.T.winner.config))
    (Json.to_string (T.config_to_json r2.T.winner.config));
  (* a different budget is a different key, not a stale hit *)
  let r3 = tune_exn ~budget:8 ~jobs:2 vec_add in
  Alcotest.(check bool) "budget is part of the key" false r3.T.from_cache

let test_winner_never_worse () =
  T.cache_clear ();
  List.iter
    (fun resolve ->
      let r = tune_exn ~budget:16 ~jobs:2 resolve in
      Alcotest.(check bool) "winner <= Eq. 2 heuristic baseline" true
        (r.T.winner.cycles <= r.T.baseline.cycles);
      Alcotest.(check bool) "gap is baseline/winner" true
        (Float.abs (r.T.gap -. (r.T.baseline.cycles /. r.T.winner.cycles))
        < 1e-9))
    [ vec_add; stencil ]

let test_report_json_roundtrip () =
  T.cache_clear ();
  let r = tune_exn ~budget:12 ~jobs:2 stencil in
  match T.result_of_json (T.result_to_json r) with
  | Error e -> Alcotest.fail ("result_of_json: " ^ e)
  | Ok r' ->
    Alcotest.(check string) "round-trips to identical bytes" (report_bytes r)
      (report_bytes r')

let test_cache_file_roundtrip () =
  T.cache_clear ();
  let r1 = tune_exn ~budget:12 ~jobs:2 vec_add in
  let file = Filename.temp_file "infs-tune-cache" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      T.save_cache file;
      let bytes1 = In_channel.with_open_bin file In_channel.input_all in
      T.save_cache file;
      let bytes2 = In_channel.with_open_bin file In_channel.input_all in
      Alcotest.(check string) "cache file bytes are deterministic" bytes1
        bytes2;
      T.cache_clear ();
      (match T.load_cache file with
      | Ok n -> Alcotest.(check bool) "loaded at least one entry" true (n >= 1)
      | Error e -> Alcotest.fail ("load_cache: " ^ e));
      let r2 = tune_exn ~budget:12 ~jobs:2 vec_add in
      Alcotest.(check bool) "loaded entry serves the repeat run" true
        r2.T.from_cache;
      Alcotest.(check string) "same winner after reload"
        (Json.to_string (T.config_to_json r1.T.winner.config))
        (Json.to_string (T.config_to_json r2.T.winner.config)))

(* ---- tuned runs are functionally bit-exact vs the heuristic ----

   A decision policy only moves kernels across the offload boundary; it
   never changes values beyond choosing which execution path computes
   them. Each path's values are deterministic, so a uniformly-forced run
   must be value-identical to the heuristic run of the paradigm that
   always takes that path: force-core matches Near-L3's near/core path,
   force-imc matches In-L3's always-in-memory path, and an all-Auto
   tuned policy matches the plain heuristic. Reference max-errs are
   exact path fingerprints here (0.0 on the near/core path; the fp32
   reassociation error of the in-memory path otherwise), so equality of
   max-errs is equality of computed values. *)

let checked_err p policy w =
  let options =
    {
      E.default_options with
      E.functional = true;
      share_compile = true;
      decision_policy = policy;
    }
  in
  match (E.run_exn ~options p w).R.correctness with
  | `Checked err -> err
  | `Skipped -> Alcotest.fail "functional run skipped its check"

let forced d = Decision.Tuned { default = d; per_kernel = [] }

let prop_tuned_run_bit_exact =
  QCheck.Test.make
    ~name:"tuned overrides are bit-exact vs the forced path's heuristic"
    ~count:20
    (QCheck.make
       ~print:(fun (p, ov, w) ->
         Printf.sprintf "%s / %s / %s" (E.paradigm_to_string p)
           (Decision.override_name ov)
           (match w with `Vec_add -> "vec_add" | `Stencil -> "stencil2d"))
       QCheck.Gen.(
         triple
           (oneofl [ E.Inf_s; E.Inf_s_nojit; E.In_l3 ])
           (oneofl [ Decision.Auto; Decision.Force_imc; Decision.Force_core ])
           (oneofl [ `Vec_add; `Stencil ])))
    (fun (p, ov, which) ->
      let w = match which with `Vec_add -> vec_add () | `Stencil -> stencil () in
      let err = checked_err p (forced ov) w in
      let expected =
        match ov with
        | Decision.Auto -> checked_err p Decision.Heuristic w
        | Decision.Force_core -> checked_err E.Near_l3 Decision.Heuristic w
        | Decision.Force_imc -> checked_err E.In_l3 Decision.Heuristic w
      in
      err = expected)

(* the acceptance criterion verbatim: consuming a tuned winner stays
   Checked 0.0, exactly like the heuristic run it replaces *)
let test_tuned_winner_checked_zero () =
  T.cache_clear ();
  let r = tune_exn ~budget:16 ~jobs:2 vec_add in
  let p, options = T.apply r E.default_options in
  let options = { options with E.functional = true; share_compile = true } in
  (match (E.run_exn ~options p (vec_add ())).R.correctness with
  | `Checked err -> Alcotest.(check (float 0.0)) "tuned run max-err" 0.0 err
  | `Skipped -> Alcotest.fail "tuned run skipped its check");
  Alcotest.(check (float 0.0)) "heuristic run max-err" 0.0
    (checked_err E.Inf_s Decision.Heuristic (vec_add ()))

let suite =
  [
    ("tune: jobs:4 byte-identical to jobs:1", `Quick, test_jobs_byte_identity);
    ("tune: second run memoized", `Quick, test_memoized_second_run);
    ("tune: winner never worse than Eq. 2", `Quick, test_winner_never_worse);
    ("tune: report JSON round-trip", `Quick, test_report_json_roundtrip);
    ("tune: cache file round-trip", `Quick, test_cache_file_roundtrip);
    ("tune: winner run stays Checked 0.0", `Quick, test_tuned_winner_checked_zero);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_tuned_run_bit_exact;
  ]
