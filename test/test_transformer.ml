(* Transformer-block workloads (attention / layernorm / mlp),
   differential-tested across the whole stack:

   - a qcheck property per workload: random shapes and input seeds at
     test scale; every paradigm's functional output must match the
     scalar interpreter bit-exactly,
   - float64 reference models (independent re-implementations of the
     staged pexp softmax, layernorm, and sigmoid-GELU) cross-check the
     interpreter itself, so a kernel-staging bug that is consistently
     wrong on both sides still fails,
   - softmax numerical stability: |logit| >= 80 (past fp32 exp
     overflow) stays finite and bit-exact thanks to max-subtraction,
   - a runtime guard: the largest shape each qcheck generator can draw,
     times the fixed iteration count, stays under an interpreter-op
     budget, so `dune runtest` wall time cannot silently regress,
   - goldens: the attention trace and its analyze report are pinned
     byte-for-byte under golden/. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module W = Infinity_stream.Workload
module T = Infs_workloads.Transformer
module D = Infs_workloads.Data

let functional = { E.default_options with E.functional = true }

(* ---- float64 reference models ---- *)

let pexp x =
  let rec go b s = if s = 0 then b else go (b *. b) (Stdlib.( - ) s 1) in
  go (Float.max 0.0 (1.0 +. (x /. 256.0))) T.squarings

let ref_attention ~batch ~seq ~dh ~logit_scale q k v =
  let sc = logit_scale /. sqrt (float_of_int dh) in
  let o = Array.make (batch * seq * dh) 0.0 in
  for b = 0 to batch - 1 do
    let base = b * seq * dh in
    let s = Array.make_matrix seq seq 0.0 in
    for r = 0 to seq - 1 do
      for cc = 0 to seq - 1 do
        for kk = 0 to dh - 1 do
          s.(r).(cc) <-
            s.(r).(cc) +. (q.(base + (r * dh) + kk) *. k.(base + (cc * dh) + kk))
        done
      done
    done;
    for r = 0 to seq - 1 do
      let m = Array.fold_left Float.max (-1e30) s.(r) in
      let p = Array.map (fun x -> pexp (sc *. (x -. m))) s.(r) in
      let z = Array.fold_left ( +. ) 0.0 p in
      for nn = 0 to dh - 1 do
        let acc = ref 0.0 in
        for cc = 0 to seq - 1 do
          acc := !acc +. (p.(cc) /. z *. v.(base + (cc * dh) + nn))
        done;
        o.(base + (r * dh) + nn) <- !acc
      done
    done
  done;
  o

let ref_layernorm ~rows ~dim x g bt =
  let y = Array.make (rows * dim) 0.0 in
  let inv_d = 1.0 /. float_of_int dim in
  for r = 0 to rows - 1 do
    let mu = ref 0.0 in
    for dd = 0 to dim - 1 do
      mu := !mu +. (x.((r * dim) + dd) *. inv_d)
    done;
    let var = ref 0.0 in
    for dd = 0 to dim - 1 do
      let e = x.((r * dim) + dd) -. !mu in
      var := !var +. (e *. e *. inv_d)
    done;
    let sd = sqrt (!var +. 1e-5) in
    for dd = 0 to dim - 1 do
      y.((r * dim) + dd) <-
        ((x.((r * dim) + dd) -. !mu) /. sd *. g.(dd)) +. bt.(dd)
    done
  done;
  y

let ref_mlp ~rows ~dim ~hidden x w1 b1 w2 b2 =
  let gelu u =
    let z = Float.min 100.0 (Float.max (-100.0) (1.702 *. u)) in
    let p = pexp z in
    u *. (p /. (1.0 +. p))
  in
  let y = Array.make (rows * dim) 0.0 in
  for r = 0 to rows - 1 do
    let a = Array.make hidden 0.0 in
    for hh = 0 to hidden - 1 do
      let acc = ref 0.0 in
      for kk = 0 to dim - 1 do
        acc := !acc +. (x.((r * dim) + kk) *. w1.((kk * hidden) + hh))
      done;
      a.(hh) <- gelu (!acc +. b1.(hh))
    done;
    for nn = 0 to dim - 1 do
      let acc = ref 0.0 in
      for kk = 0 to hidden - 1 do
        acc := !acc +. (a.(kk) *. w2.((kk * dim) + nn))
      done;
      y.((r * dim) + nn) <- !acc +. b2.(nn)
    done
  done;
  y

(* ---- helpers ---- *)

let interp_env (w : W.t) =
  match Interp.create w.W.prog ~params:w.W.params with
  | Error e -> Alcotest.fail e
  | Ok env ->
    List.iter (fun (n, a) -> Interp.set_array env n a) (Lazy.force w.W.inputs);
    Interp.run env;
    env

let check_close name want got =
  Array.iteri
    (fun idx g ->
      if Float.abs (g -. want.(idx)) > 1e-4 then
        Alcotest.failf "%s[%d]: interpreter %.7g vs float64 reference %.7g"
          name idx g want.(idx))
    got

(* randomized instances: same programs, fresh input seeds per case *)

let randomized_attention (b, t, dh, seed) =
  let w = T.attention ~batch:b ~seq:t ~dh () in
  let n = b * t * dh in
  {
    w with
    W.wname = Printf.sprintf "attention/rand%d" seed;
    inputs =
      lazy
        [
          ("Q", D.uniform_range ~seed ~lo:(-1.0) ~hi:1.0 n);
          ("K", D.uniform_range ~seed:(Stdlib.( + ) seed 1) ~lo:(-1.0) ~hi:1.0 n);
          ("V", D.uniform_range ~seed:(Stdlib.( + ) seed 2) ~lo:(-1.0) ~hi:1.0 n);
        ];
  }

let randomized_layernorm (rows, dim, seed) =
  let w = T.layernorm ~rows ~dim in
  {
    w with
    W.wname = Printf.sprintf "layernorm/rand%d" seed;
    inputs =
      lazy
        [
          ("X", D.uniform_range ~seed ~lo:(-2.0) ~hi:2.0 (rows * dim));
          ("G", D.uniform_range ~seed:(Stdlib.( + ) seed 1) ~lo:0.5 ~hi:1.5 dim);
          ("Bt", D.uniform_range ~seed:(Stdlib.( + ) seed 2) ~lo:(-0.5) ~hi:0.5 dim);
        ];
  }

let randomized_mlp (rows, dim, hidden, seed) =
  let w = T.mlp ~rows ~dim ~hidden in
  {
    w with
    W.wname = Printf.sprintf "mlp/rand%d" seed;
    inputs =
      lazy
        [
          ("X", D.uniform_range ~seed ~lo:(-1.0) ~hi:1.0 (rows * dim));
          ("W1", D.uniform_range ~seed:(Stdlib.( + ) seed 1) ~lo:(-0.2) ~hi:0.2 (dim * hidden));
          ("B1", D.uniform_range ~seed:(Stdlib.( + ) seed 2) ~lo:(-0.1) ~hi:0.1 hidden);
          ("W2", D.uniform_range ~seed:(Stdlib.( + ) seed 3) ~lo:(-0.2) ~hi:0.2 (hidden * dim));
          ("B2", D.uniform_range ~seed:(Stdlib.( + ) seed 4) ~lo:(-0.1) ~hi:0.1 dim);
        ];
  }

(* every paradigm must agree with the interpreter bit-exactly *)
let check_all_paradigms (w : W.t) =
  List.iter
    (fun p ->
      match E.run ~options:functional p w with
      | Error e ->
        QCheck.Test.fail_reportf "%s [%s]: %s" w.W.wname
          (E.paradigm_to_string p) e
      | Ok r -> (
        match r.R.correctness with
        | `Checked 0.0 -> ()
        | `Checked err ->
          QCheck.Test.fail_reportf "%s [%s]: expected bit-exact, err %.3e"
            w.W.wname (E.paradigm_to_string p) err
        | `Skipped ->
          QCheck.Test.fail_reportf "%s [%s]: expected a correctness check"
            w.W.wname (E.paradigm_to_string p)))
    E.all_paradigms;
  true

(* ---- the qcheck differential properties ---- *)

(* iteration counts are named so the runtime-budget guard below can see
   them; properties honor QCHECK_SEED via Qcheck_seed.rand *)
let attention_count = 6
let layernorm_count = 8
let mlp_count = 6

let prop_attention_differential =
  QCheck.Test.make ~count:attention_count
    ~name:"attention: engine = interpreter on all paradigms"
    (QCheck.make
       ~print:(fun (b, t, dh, seed) ->
         Printf.sprintf "b=%d t=%d dh=%d seed=%d" b t dh seed)
       QCheck.Gen.(
         quad (int_range 1 2) (int_range 2 8) (int_range 2 6)
           (int_range 0 100_000)))
    (fun case -> check_all_paradigms (randomized_attention case))

let prop_layernorm_differential =
  QCheck.Test.make ~count:layernorm_count
    ~name:"layernorm: engine = interpreter on all paradigms"
    (QCheck.make
       ~print:(fun (r, d, seed) -> Printf.sprintf "r=%d d=%d seed=%d" r d seed)
       QCheck.Gen.(
         triple (int_range 1 12) (int_range 2 10) (int_range 0 100_000)))
    (fun case -> check_all_paradigms (randomized_layernorm case))

let prop_mlp_differential =
  QCheck.Test.make ~count:mlp_count
    ~name:"mlp: engine = interpreter on all paradigms"
    (QCheck.make
       ~print:(fun (r, d, h, seed) ->
         Printf.sprintf "r=%d d=%d h=%d seed=%d" r d h seed)
       QCheck.Gen.(
         quad (int_range 1 8) (int_range 2 8) (int_range 2 12)
           (int_range 0 100_000)))
    (fun case -> check_all_paradigms (randomized_mlp case))

(* ---- interpreter vs float64 reference ---- *)

let test_attention_reference () =
  let batch = 2 and seq = 8 and dh = 4 in
  let w = T.attention ~batch ~seq ~dh () in
  let inp = Lazy.force w.W.inputs in
  let want =
    ref_attention ~batch ~seq ~dh ~logit_scale:1.0 (List.assoc "Q" inp)
      (List.assoc "K" inp) (List.assoc "V" inp)
  in
  check_close "O" want (Interp.get_array (interp_env w) "O")

let test_layernorm_reference () =
  let rows = 12 and dim = 8 in
  let w = T.layernorm ~rows ~dim in
  let inp = Lazy.force w.W.inputs in
  let want =
    ref_layernorm ~rows ~dim (List.assoc "X" inp) (List.assoc "G" inp)
      (List.assoc "Bt" inp)
  in
  check_close "Y" want (Interp.get_array (interp_env w) "Y")

let test_mlp_reference () =
  let rows = 8 and dim = 8 and hidden = 16 in
  let w = T.mlp ~rows ~dim ~hidden in
  let inp = Lazy.force w.W.inputs in
  let want =
    ref_mlp ~rows ~dim ~hidden (List.assoc "X" inp) (List.assoc "W1" inp)
      (List.assoc "B1" inp) (List.assoc "W2" inp) (List.assoc "B2" inp)
  in
  check_close "Y" want (Interp.get_array (interp_env w) "Y")

(* ---- softmax numerical stability (satellite) ---- *)

let test_softmax_stability () =
  let seq = 8 and dh = 4 in
  let logit_scale = 240.0 in
  let w = T.attention ~logit_scale ~batch:1 ~seq ~dh () in
  (* the raw logits really are past the fp32 exp overflow point (~88.7) *)
  let inp = Lazy.force w.W.inputs in
  let q = List.assoc "Q" inp and k = List.assoc "K" inp in
  let sc = logit_scale /. sqrt (float_of_int dh) in
  let maxlogit = ref 0.0 in
  for r = 0 to Stdlib.( - ) seq 1 do
    for cc = 0 to Stdlib.( - ) seq 1 do
      let s = ref 0.0 in
      for kk = 0 to Stdlib.( - ) dh 1 do
        s := !s +. (q.((r * dh) + kk) *. k.((cc * dh) + kk))
      done;
      maxlogit := Float.max !maxlogit (Float.abs (sc *. !s))
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "max |logit| reaches 80 (got %.1f)" !maxlogit)
    true
    (!maxlogit >= 80.0);
  (* no non-finite value anywhere in the interpreter state *)
  let env = interp_env w in
  List.iter
    (fun name ->
      Array.iteri
        (fun idx x ->
          if not (Float.is_finite x) then
            Alcotest.failf "%s[%d] is non-finite (%h)" name idx x)
        (Interp.get_array env name))
    [ "S"; "M"; "P"; "Z"; "AV"; "O" ];
  (* the float64 reference still agrees *)
  let v = List.assoc "V" inp in
  check_close "O"
    (ref_attention ~batch:1 ~seq ~dh ~logit_scale q k v)
    (Interp.get_array env "O");
  (* and every paradigm stays bit-exact against the interpreter *)
  ignore (check_all_paradigms w)

(* ---- runtime guard (satellite) ---- *)

let interp_ops (w : W.t) = Interp.op_count (interp_env w)

let test_runtime_budget () =
  (* worst-case shape each generator can draw, times the property's
     iteration count, bounded in interpreter ops; 6 paradigm runs per
     iteration cost a small multiple of this. Grows only if someone
     widens the generators or the counts — which is exactly what this
     test is meant to make deliberate. *)
  let budget = 2_000_000 in
  List.iter
    (fun (name, count, w) ->
      let ops = interp_ops w in
      let total = count * ops in
      if total > budget then
        Alcotest.failf
          "%s: %d qcheck iterations x %d interpreter ops = %d exceeds the \
           %d-op budget; shrink the generator or the count"
          name count ops total budget)
    [
      ("attention", attention_count, randomized_attention (2, 8, 6, 0));
      ("layernorm", layernorm_count, randomized_layernorm (12, 10, 0));
      ("mlp", mlp_count, randomized_mlp (8, 8, 12, 0));
    ]

(* ---- goldens: attention trace + analyze report pinned byte-for-byte ---- *)

let golden path =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) path;
      path;
      Filename.concat "test" path;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let first_diff got want =
  let lines s = String.split_on_char '\n' s in
  let rec go i = function
    | g :: gs, w :: ws -> if g = w then go (Stdlib.( + ) i 1) (gs, ws) else (i, g, w)
    | g :: _, [] -> (i, g, "<end of golden>")
    | [], w :: _ -> (i, "<end of output>", w)
    | [], [] -> (i, "<equal?>", "<equal?>")
  in
  go 1 (lines got, lines want)

let test_golden_attention_trace () =
  let buf = Buffer.create 65536 in
  let trace = Trace.to_buffer Trace.Jsonl buf in
  let options = { E.default_options with E.trace } in
  ignore (E.run_exn ~options E.Inf_s (T.attention ~batch:2 ~seq:8 ~dh:4 ()));
  Trace.close trace;
  let got = Buffer.contents buf in
  let want = read_file (golden "golden/attention_inf_s.jsonl") in
  if got <> want then begin
    let i, g, w = first_diff got want in
    Alcotest.failf
      "attention trace diverges from golden at line %d\n\
      \  got:    %s\n\
      \  golden: %s\n\
       If intentional, regenerate with:\n\
      \  dune exec bin/infs_run.exe -- run -w attention -p inf-s --scale \
       test --trace test/golden/attention_inf_s.jsonl"
      i g w
  end

let test_golden_attention_analyze () =
  let rp = Trace_replay.create () in
  let ic = open_in (golden "golden/attention_inf_s.jsonl") in
  (match Trace_replay.feed_channel rp ic with
  | Ok _ -> close_in ic
  | Error e ->
    close_in ic;
    Alcotest.failf "replay failed: %s" e);
  let got = Trace_replay.report ~top:8 rp in
  let want = read_file (golden "golden/analyze_attention_inf_s.txt") in
  if got <> want then begin
    let i, g, w = first_diff got want in
    Alcotest.failf
      "analyze report diverges from golden at line %d\n\
      \  got:    %s\n\
      \  golden: %s\n\
       If intentional, regenerate with:\n\
      \  dune exec bin/infs_run.exe -- analyze \
       test/golden/attention_inf_s.jsonl -o \
       test/golden/analyze_attention_inf_s.txt"
      i g w
  end

let suite =
  [
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ())
      prop_attention_differential;
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ())
      prop_layernorm_differential;
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_mlp_differential;
    ("attention vs float64 reference", `Quick, test_attention_reference);
    ("layernorm vs float64 reference", `Quick, test_layernorm_reference);
    ("mlp vs float64 reference", `Quick, test_mlp_reference);
    ("softmax stability at |logit| >= 80", `Quick, test_softmax_stability);
    ("qcheck runtime budget", `Quick, test_runtime_budget);
    ("golden attention trace", `Quick, test_golden_attention_trace);
    ("golden attention analyze report", `Quick, test_golden_attention_analyze);
  ]
