(* The multicore batch-execution subsystem (infs_pool):
   - submission-order determinism under an adversarial scheduler (jobs with
     deliberately inverted durations complete out of order; results must
     not),
   - per-job wall-clock timeouts fire without killing the pool,
   - exception capture: a crashing job is an [Error], not a pool death,
   - cancellation of not-yet-started jobs,
   - a qcheck property: [run ~jobs:k] equals [run ~jobs:1] on random job
     lists,
   - the content-addressed cache (Ccache) under concurrent access,
   - engine domain-safety: concurrent engine runs (including functional
     ones and shared compile caching) report exactly what sequential runs
     report. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report

(* ---- pool core ---- *)

let test_inverted_durations () =
  (* later-submitted jobs finish first; emission order must stay 0..n-1 *)
  let n = 8 in
  let emitted = ref [] in
  Pool.map_stream ~jobs:4
    ~f:(fun i ->
      Unix.sleepf (float_of_int (n - i) *. 0.01);
      i * i)
    ~emit:(fun id r -> emitted := (id, r) :: !emitted)
    (List.init n Fun.id);
  let got = List.rev !emitted in
  List.iteri
    (fun i (id, r) ->
      Alcotest.(check int) "emitted in submission order" i id;
      match r with
      | Ok v -> Alcotest.(check int) "result of the right job" (i * i) v
      | Error e -> Alcotest.fail (Pool.error_to_string e))
    got;
  Alcotest.(check int) "every job emitted exactly once" n (List.length got)

let test_run_list_order () =
  let results =
    Pool.run_list ~jobs:3
      (List.init 12 (fun i () ->
           Unix.sleepf (if i mod 3 = 0 then 0.02 else 0.001);
           i))
  in
  Alcotest.(check (list int)) "submission order"
    (List.init 12 Fun.id)
    (List.map (function Ok v -> v | Error _ -> -1) results)

let test_timeout_fires () =
  let pool = Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let slow = Pool.submit pool ~timeout_s:0.05 (fun () -> Unix.sleepf 5.0) in
      (match Pool.await slow with
      | Error Pool.Timed_out -> ()
      | Ok _ -> Alcotest.fail "slow job should have timed out"
      | Error e -> Alcotest.fail (Pool.error_to_string e));
      Alcotest.(check bool) "await returned at the timeout, not at completion"
        true
        (Unix.gettimeofday () -. t0 < 2.0);
      (* the pool survives: the other worker still takes jobs *)
      let ok = Pool.submit pool ~timeout_s:10.0 (fun () -> 41 + 1) in
      match Pool.await ok with
      | Ok v -> Alcotest.(check int) "pool alive after timeout" 42 v
      | Error e -> Alcotest.fail (Pool.error_to_string e))

let test_ticker_parks_when_idle () =
  (* a resident pool that once ran a timeout-armed job must not keep the
     ticker domain spinning after the job completes *)
  let pool = Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (match Pool.await (Pool.submit pool ~timeout_s:5.0 (fun () -> 7)) with
      | Ok 7 -> ()
      | _ -> Alcotest.fail "armed job should complete");
      (* give the ticker a few periods to reap the finished watcher *)
      Unix.sleepf 0.05;
      let t1 = Pool.ticker_ticks pool in
      Unix.sleepf 0.2;
      let t2 = Pool.ticker_ticks pool in
      (* a spinning ticker would add ~100 ticks in 0.2 s; a parked one
         adds none (a generous slack of 3 absorbs scheduling noise) *)
      Alcotest.(check bool)
        (Printf.sprintf "ticker parked while idle (%d -> %d)" t1 t2)
        true
        (t2 - t1 <= 3);
      (* and it wakes again for the next armed job *)
      match Pool.await (Pool.submit pool ~timeout_s:0.05 (fun () -> Unix.sleepf 5.0)) with
      | Error Pool.Timed_out -> ()
      | Ok _ -> Alcotest.fail "expected a timeout after re-arming"
      | Error e -> Alcotest.fail (Pool.error_to_string e))

let test_exception_capture () =
  let results =
    Pool.run_list ~jobs:2
      [
        (fun () -> 1);
        (fun () -> failwith "boom");
        (fun () -> 3);
        (fun () -> raise Not_found);
        (fun () -> 5);
      ]
  in
  match results with
  | [ Ok 1; Error (Pool.Failed m1); Ok 3; Error (Pool.Failed m2); Ok 5 ] ->
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "carries the exception text" true (contains m1 "boom");
    Alcotest.(check bool) "Not_found captured" true (contains m2 "Not_found")
  | _ -> Alcotest.fail "crashing jobs must not affect their neighbours"

let test_cancellation () =
  let pool = Pool.create ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let gate = Atomic.make false in
      let blocker =
        Pool.submit pool (fun () ->
            while not (Atomic.get gate) do
              Unix.sleepf 0.001
            done)
      in
      let doomed = Pool.submit pool (fun () -> 7) in
      Alcotest.(check bool) "queued job cancels" true (Pool.cancel doomed);
      Alcotest.(check bool) "second cancel is a no-op" false (Pool.cancel doomed);
      Atomic.set gate true;
      (match Pool.await doomed with
      | Error Pool.Cancelled -> ()
      | _ -> Alcotest.fail "cancelled job must report Cancelled");
      (match Pool.await blocker with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Pool.error_to_string e));
      Alcotest.(check bool) "finished job does not cancel" false
        (Pool.cancel blocker))

let prop_parallel_equals_sequential =
  QCheck.Test.make ~name:"run ~jobs:k equals run ~jobs:1" ~count:30
    QCheck.(pair (int_range 2 4) (small_list small_int))
    (fun (k, xs) ->
      let jobs = List.map (fun x () -> (x * 31) lxor (x lsr 2)) xs in
      Pool.run_list ~jobs:1 jobs = Pool.run_list ~jobs:k jobs)

(* ---- retry backoff: capped full jitter ---- *)

let test_backoff_bounds () =
  (* every draw lies in [0, min cap (backoff * 2^attempt)) — the raw
     exponential is both capped and jittered *)
  let backoff_s = 0.1 and cap_s = 1.0 in
  for seed = 0 to 19 do
    let rng = Rng.create seed in
    for attempt = 0 to 12 do
      let d = Pool.backoff_delay ~backoff_s ~cap_s ~attempt rng in
      let raw = backoff_s *. (2.0 ** float_of_int attempt) in
      Alcotest.(check bool) "non-negative" true (d >= 0.0);
      Alcotest.(check bool) "below the raw exponential" true (d < raw || raw > cap_s);
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d capped at %.1fs, drew %.3f" attempt cap_s d)
        true (d < cap_s)
    done
  done

let test_backoff_caps_growth () =
  (* attempt 60: uncapped this would be ~3.6e16 years; capped it stays
     under cap_s *)
  let rng = Rng.create 5 in
  let d = Pool.backoff_delay ~backoff_s:1.0 ~cap_s:30.0 ~attempt:60 rng in
  Alcotest.(check bool) "huge attempt stays capped" true (d >= 0.0 && d < 30.0)

let test_backoff_jitters () =
  (* full jitter: distinct draws for the same attempt (no lockstep
     stampede), yet the same seed reproduces the same schedule *)
  let draws seed =
    let rng = Rng.create seed in
    List.init 8 (fun attempt ->
        Pool.backoff_delay ~backoff_s:0.5 ~cap_s:30.0 ~attempt rng)
  in
  Alcotest.(check bool) "same seed, same schedule" true (draws 11 = draws 11);
  Alcotest.(check bool) "different seeds decorrelate" true (draws 11 <> draws 12);
  (* within one stream the draws are not all equal (actual jitter) *)
  let ds = draws 11 in
  Alcotest.(check bool) "draws vary" true
    (List.exists (fun d -> d <> List.hd ds) ds)

let test_backoff_zero_disabled () =
  let rng = Rng.create 1 in
  Alcotest.check (Alcotest.float 0.0) "backoff 0 retries immediately" 0.0
    (Pool.backoff_delay ~backoff_s:0.0 ~cap_s:30.0 ~attempt:5 rng);
  Alcotest.check (Alcotest.float 0.0) "negative backoff treated as disabled" 0.0
    (Pool.backoff_delay ~backoff_s:(-1.0) ~cap_s:30.0 ~attempt:5 rng)

let test_retries_with_capped_backoff () =
  (* end to end: a twice-failing job succeeds on the third attempt with a
     tight cap, and the whole schedule stays fast *)
  let t0 = Unix.gettimeofday () in
  let tries = Atomic.make 0 in
  let results =
    Pool.run_list ~jobs:1 ~retries:4 ~backoff_s:0.005 ~backoff_cap_s:0.02
      [
        (fun () ->
          if Atomic.fetch_and_add tries 1 < 2 then failwith "transient";
          "ok");
      ]
  in
  (match results with
  | [ Ok "ok" ] -> ()
  | [ Error e ] -> Alcotest.fail (Pool.error_to_string e)
  | _ -> Alcotest.fail "expected one outcome");
  Alcotest.(check int) "third attempt succeeded" 3 (Atomic.get tries);
  Alcotest.(check bool) "capped schedule completes quickly" true
    (Unix.gettimeofday () -. t0 < 2.0)

(* ---- content-addressed cache ---- *)

let test_ccache_basics () =
  let c = Ccache.create ~shards:4 () in
  let calls = ref 0 in
  let v, hit =
    Ccache.find_or_compute c ~key:"a" (fun () ->
        incr calls;
        "va")
  in
  Alcotest.(check (pair string bool)) "miss computes" ("va", false) (v, hit);
  let v, hit = Ccache.find_or_compute c ~key:"a" (fun () -> Alcotest.fail "hit") in
  Alcotest.(check (pair string bool)) "hit reuses" ("va", true) (v, hit);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "one entry" 1 (Ccache.length c);
  Alcotest.(check (pair int int)) "counters" (1, 1) (Ccache.hits c, Ccache.misses c);
  Ccache.reset c;
  Alcotest.(check int) "reset drops entries" 0 (Ccache.length c);
  Alcotest.(check (pair int int)) "reset zeroes counters" (0, 0)
    (Ccache.hits c, Ccache.misses c)

let test_ccache_concurrent () =
  (* many domains hammering few keys: every caller must observe the same
     value per key *)
  let c = Ccache.create ~shards:2 () in
  let keys = [ "k0"; "k1"; "k2" ] in
  let results =
    Pool.run_list ~jobs:4
      (List.concat_map
         (fun key ->
           List.init 8 (fun _ () ->
               fst (Ccache.find_or_compute c ~key (fun () -> key ^ "!"))))
         keys)
  in
  List.iteri
    (fun i r ->
      let key = List.nth keys (i / 8) in
      match r with
      | Ok v -> Alcotest.(check string) "stable value" (key ^ "!") v
      | Error e -> Alcotest.fail (Pool.error_to_string e))
    results;
  Alcotest.(check int) "one entry per key" 3 (Ccache.length c)

(* ---- engine domain-safety: parallel == sequential ---- *)

let agreement_pairs () =
  [
    (Infs_workloads.Stencil.stencil1d ~iters:2 ~n:2048, E.Inf_s);
    (Infs_workloads.Micro.vec_add ~n:4096, E.In_l3);
    (Infs_workloads.Mm.mm_outer ~n:16, E.Near_l3);
    (Infs_workloads.Gauss.gauss_elim ~n:12, E.Inf_s);
    (Infs_workloads.Dwt2d.dwt2d ~n:16, E.Base);
  ]

let report_fingerprint (r : R.t) =
  (* the pretty-printer covers cycles, energy, breakdown, utilization and
     correctness; add the raw float and traffic lists for exactness *)
  Format.asprintf "%a|%.17g|%s" R.pp r r.R.cycles
    (String.concat ";"
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%.17g" k v)
          (r.R.noc_byte_hops @ r.R.local_bytes @ r.R.energy_breakdown)))

let test_concurrent_engine_agreement () =
  let options = { E.default_options with share_compile = true } in
  let sequential =
    List.map (fun (w, p) -> report_fingerprint (E.run_exn ~options p w))
      (agreement_pairs ())
  in
  let parallel =
    Pool.run_list ~jobs:4
      (List.map
         (fun (w, p) () -> report_fingerprint (E.run_exn ~options p w))
         (agreement_pairs ()))
  in
  List.iter2
    (fun want got ->
      match got with
      | Ok got -> Alcotest.(check string) "parallel == sequential" want got
      | Error e -> Alcotest.fail (Pool.error_to_string e))
    sequential parallel

let test_concurrent_functional_runs () =
  (* functional mode forces shared lazy inputs and checks against the
     golden interpreter — the two hazards the audit guards with a mutex *)
  let ws =
    [
      Infs_workloads.Micro.vec_add ~n:512;
      Infs_workloads.Micro.array_sum ~n:512;
      Infs_workloads.Mm.mm_outer ~n:8;
      Infs_workloads.Mm.mm_inner ~n:8;
    ]
  in
  let options = { E.default_options with functional = true; share_compile = true } in
  let results =
    Pool.run_list ~jobs:4
      (List.map (fun w () -> (E.run_exn ~options E.Inf_s w).R.correctness) ws)
  in
  List.iter
    (function
      | Ok (`Checked err) ->
        Alcotest.(check bool) "functionally correct under concurrency" true
          (err <= 1e-3)
      | Ok `Skipped -> Alcotest.fail "expected a correctness check"
      | Error e -> Alcotest.fail (Pool.error_to_string e))
    results

let test_concurrent_rng_determinism () =
  (* Rng is per-instance state: domains with equal seeds must see equal
     streams, regardless of interleaving *)
  let draw () =
    let rng = Rng.create 1234 in
    List.init 256 (fun _ -> Rng.int64 rng)
  in
  let want = draw () in
  List.iter
    (function
      | Ok got -> Alcotest.(check bool) "identical stream per domain" true (got = want)
      | Error e -> Alcotest.fail (Pool.error_to_string e))
    (Pool.run_list ~jobs:4 (List.init 4 (fun _ -> draw)))

let test_compile_cache_hits () =
  E.compile_cache_clear ();
  let options = { E.default_options with share_compile = true } in
  let w = Infs_workloads.Micro.vec_add ~n:1024 in
  ignore (E.run_exn ~options E.Inf_s w);
  ignore (E.run_exn ~options E.In_l3 w);
  ignore (E.run_exn ~options E.Near_l3 w);
  let hits, misses, entries = E.compile_cache_stats () in
  Alcotest.(check bool) "same program across paradigms hits" true (hits >= 2);
  Alcotest.(check int) "compiled once" 1 misses;
  Alcotest.(check int) "one cached binary" 1 entries;
  (* a different optimizer flag is a different artifact *)
  ignore (E.run_exn ~options:{ options with E.optimize = false } E.Inf_s w);
  let _, misses', entries' = E.compile_cache_stats () in
  Alcotest.(check int) "optimize flag keys separately" 2 misses';
  Alcotest.(check int) "two cached binaries" 2 entries';
  E.compile_cache_clear ()

let suite =
  [
    Alcotest.test_case "inverted durations emit in order" `Quick
      test_inverted_durations;
    Alcotest.test_case "run_list keeps submission order" `Quick test_run_list_order;
    Alcotest.test_case "timeout fires; pool survives" `Quick test_timeout_fires;
    Alcotest.test_case "ticker parks when idle" `Quick test_ticker_parks_when_idle;
    Alcotest.test_case "exceptions are captured per job" `Quick
      test_exception_capture;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_parallel_equals_sequential;
    Alcotest.test_case "backoff delay stays in bounds" `Quick test_backoff_bounds;
    Alcotest.test_case "backoff cap stops exponential growth" `Quick
      test_backoff_caps_growth;
    Alcotest.test_case "backoff jitter is seeded and decorrelated" `Quick
      test_backoff_jitters;
    Alcotest.test_case "backoff 0 disables the sleep" `Quick
      test_backoff_zero_disabled;
    Alcotest.test_case "retries honour the capped backoff" `Quick
      test_retries_with_capped_backoff;
    Alcotest.test_case "ccache basics" `Quick test_ccache_basics;
    Alcotest.test_case "ccache concurrent" `Quick test_ccache_concurrent;
    Alcotest.test_case "concurrent engine runs == sequential" `Quick
      test_concurrent_engine_agreement;
    Alcotest.test_case "concurrent functional runs stay correct" `Quick
      test_concurrent_functional_runs;
    Alcotest.test_case "rng streams are per-instance" `Quick
      test_concurrent_rng_determinism;
    Alcotest.test_case "compile cache shares across paradigms" `Quick
      test_compile_cache_hits;
  ]
