(* Paper-fidelity tests: the exact Fig. 9 worked example, and a semantic
   check of Algorithm 2 — interpreting the lowered shift commands moves
   every element to exactly the cell the mv node's semantics demand. *)

let cfg = Machine_config.default

let lower_mv ~ranges ~tile ~dim ~dist =
  let g =
    Tdfg.create ~name:"t" ~dims:(List.length ranges) ~dtype:Dtype.Fp32
  in
  let view = Symrect.of_hyperrect (Hyperrect.of_ranges ranges) in
  let axes = List.init (List.length ranges) Fun.id in
  let a = Tdfg.tensor g ~array:"A" ~view ~axes in
  let m = Tdfg.mv g a ~dim ~dist in
  Tdfg.add_output g (Tdfg.Out_tensor { src = m; array = "B"; axes });
  let schedule =
    match Schedule.compile ~wordlines:256 g with Ok s -> s | Error e -> failwith e
  in
  let shape = Array.of_list (List.map (fun (_, hi) -> max 1 hi) ranges) in
  (* test-local layouts need not fill 256 bitlines; build the view direct *)
  let layout =
    {
      Layout.tile = Array.of_list tile;
      grid =
        Array.of_list
          (List.mapi (fun d t -> (shape.(d) + t - 1) / t) tile);
      shape;
      tiles_total = 0;
    }
  in
  let acmds, _ = Jit.lower cfg g ~schedule ~layout ~env:(fun _ -> 0) in
  let cmds = Array.to_list acmds in
  List.filter
    (fun (c : Command.t) ->
      match c.kind with
      | Command.Intra_shift _ | Command.Inter_shift _ -> true
      | _ -> false)
    cmds

(* The paper's Fig. 9: A[0,4)x[0,3), 2x2 tiles, shift columns right by 1.
   Expected: CMD0 intra-shift (+1) of in-tile column 0 on tiles {0,2};
   CMD1 inter-shift (+1 tile, -1 bitline) of in-tile column 1 on tiles
   {0,2}; CMD2 intra-shift (+1) of in-tile column 0 on tiles {1,3}. *)
let test_fig9_example () =
  let cmds = lower_mv ~ranges:[ (0, 4); (0, 3) ] ~tile:[ 2; 2 ] ~dim:1 ~dist:1 in
  Alcotest.(check int) "three shift commands" 3 (List.length cmds);
  let intra, inter =
    List.partition
      (fun (c : Command.t) ->
        match c.kind with Command.Intra_shift _ -> true | _ -> false)
      cmds
  in
  Alcotest.(check int) "two intra" 2 (List.length intra);
  Alcotest.(check int) "one inter" 1 (List.length inter);
  let boxes =
    List.map (fun (c : Command.t) -> Hyperrect.to_string c.tile_box) intra
    |> List.sort compare
  in
  (* tiles {0,2} = tile box [0,2)x[0,1); tiles {1,3} = [0,2)x[1,2) *)
  Alcotest.(check (list string)) "intra tile boxes"
    [ "[0,2)x[0,1)"; "[0,2)x[1,2)" ]
    boxes;
  List.iter
    (fun (c : Command.t) ->
      match c.kind with
      | Command.Intra_shift { dim; distance } ->
        Alcotest.(check int) "dim 1" 1 dim;
        Alcotest.(check int) "distance +1" 1 distance;
        Alcotest.(check int) "two lanes move (column of 2 rows... per tile)" 2
          c.lanes_per_tile
      | _ -> ())
    intra;
  match (List.hd inter : Command.t).kind with
  | Command.Inter_shift { dim; tile_dist; intra_dist } ->
    Alcotest.(check int) "dim 1" 1 dim;
    Alcotest.(check int) "one tile forward" 1 tile_dist;
    Alcotest.(check int) "lands at in-tile -1" (-1) intra_dist;
    Alcotest.(check string) "from tiles {0,2}" "[0,2)x[0,1)"
      (Hyperrect.to_string (List.hd inter).tile_box)
  | _ -> Alcotest.fail "expected inter shift"

(* Semantic interpreter for 1-D shift commands: each command moves the
   lanes its bitline pattern selects, within the tiles of its tile box, by
   inter*T + intra cells. Applying all commands of one lowered mv must
   equal the mv's own semantics. *)
let apply_shift_commands ~tile cmds (src : (int * float) list) =
  let moved = Hashtbl.create 64 in
  List.iter
    (fun (c : Command.t) ->
      match c.kind with
      | Command.Intra_shift { distance; _ } | Command.Inter_shift { intra_dist = distance; _ }
        -> begin
        let tile_delta =
          match c.kind with
          | Command.Inter_shift { tile_dist; _ } -> tile_dist
          | _ -> 0
        in
        let pat = Option.get c.bitline_pat in
        let lo_t = Hyperrect.lo c.tile_box 0 and hi_t = Hyperrect.hi c.tile_box 0 in
        for t = lo_t to hi_t - 1 do
          List.iter
            (fun pos ->
              let cell = (t * tile) + pos in
              match List.assoc_opt cell src with
              | Some v ->
                let dest = cell + (tile_delta * tile) + distance in
                if Hashtbl.mem moved dest then failwith "collision";
                Hashtbl.replace moved dest v
              | None -> ())
            (Pattern.indices pat)
        done
      end
      | _ -> ())
    cmds;
  moved

let prop_alg2_semantics =
  QCheck.Test.make ~name:"Alg 2 commands implement mv semantics (1D)" ~count:300
    QCheck.(
      quad (int_range 0 60) (int_range 2 80) (int_range (-50) 50)
        (oneofl [ 4; 8; 16; 32 ]))
    (fun (lo, len, dist, tile) ->
      QCheck.assume (dist <> 0);
      let hi = lo + len in
      let cmds = lower_mv ~ranges:[ (lo, hi) ] ~tile:[ tile ] ~dim:0 ~dist in
      let src = List.init len (fun i -> (lo + i, float_of_int (lo + i))) in
      let moved = apply_shift_commands ~tile cmds src in
      (* every source cell must land exactly at cell+dist with its value *)
      Hashtbl.length moved = len
      && List.for_all
           (fun (cell, v) ->
             match Hashtbl.find_opt moved (cell + dist) with
             | Some v' -> v' = v
             | None -> false)
           src)

let test_shift_masks_disjoint () =
  (* the two Alg-2 masks partition each tile *)
  let cmds = lower_mv ~ranges:[ (0, 64) ] ~tile:[ 16 ] ~dim:0 ~dist:5 in
  let total_lanes =
    List.fold_left (fun acc c -> acc + Command.elements_touched c) 0 cmds
  in
  Alcotest.(check int) "all 64 elements move exactly once" 64 total_lanes

let suite =
  [
    ("paper Fig 9 worked example", `Quick, test_fig9_example);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_alg2_semantics;
    ("shift masks partition the tile", `Quick, test_shift_masks_disjoint);
  ]
