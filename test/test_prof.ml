(* The profiling + perf-trending subsystem (infs_prof):
   - registry behaviour: null no-ops, span nesting self/total accounting,
     record_path, merge order irrelevance, folded-stack rendering,
   - golden profile report: a fixed (workload, paradigm) pair must
     reproduce the committed normalized report byte-for-byte — span call
     counts are part of the simulator's deterministic contract; only the
     time columns are normalized away,
   - reconciliation: span call counts equal trace/metrics event counts
     (core/near/imc vs Region_exec per target, jit vs memo lookups,
     decide vs Offload_decision) on every catalog workload x paradigm,
   - serve: per-request stage spans and Request_span trace events agree
     with each other and with the request count,
   - trend: the committed three-snapshot fixture renders the committed
     markdown page exactly, flags the planted regression,
   - bench-bisect: slice minimization on hand-made snapshots, including
     the nothing-moved and everything-moved edge cases. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module Cat = Infs_workloads.Catalog

let path_count prof path =
  List.fold_left
    (fun acc (e : Prof.entry) -> if e.path = path then acc + e.count else acc)
    0 (Prof.rows prof)

(* ---- registry ---- *)

let test_null_registry () =
  Alcotest.(check bool) "null disabled" false (Prof.enabled Prof.null);
  Prof.enter Prof.null "a";
  Prof.record Prof.null "b" ~ns:5.0;
  Prof.record_path Prof.null "c;d" ~ns:5.0 ();
  Prof.leave Prof.null;
  Alcotest.(check int) "no calls counted" 0 (Prof.calls Prof.null);
  Alcotest.(check int) "no rows" 0 (List.length (Prof.rows Prof.null));
  Alcotest.(check string) "empty folded" "" (Prof.to_folded Prof.null)

let test_span_nesting () =
  let p = Prof.create () in
  Prof.span p "outer" (fun () ->
      Prof.span p "inner" (fun () -> ());
      Prof.record p "leaf" ~ns:0.0);
  Prof.span p "outer" (fun () -> ());
  let paths = List.map (fun (e : Prof.entry) -> (e.path, e.count)) (Prof.rows p) in
  Alcotest.(check (list (pair string int)))
    "paths sorted, counts accumulated"
    [ ("outer", 2); ("outer;inner", 1); ("outer;leaf", 1) ]
    paths;
  let outer = List.find (fun (e : Prof.entry) -> e.path = "outer") (Prof.rows p) in
  Alcotest.(check bool) "self excludes nested time" true
    (outer.self_ns <= outer.total_ns);
  (* an unbalanced leave must not underflow the stack *)
  Prof.leave p;
  Prof.span p "outer" (fun () -> ());
  Alcotest.(check int) "recovered from unbalanced leave" 3 (path_count p "outer")

let test_span_exception_safe () =
  let p = Prof.create () in
  (try Prof.span p "boom" (fun () -> failwith "x") with Failure _ -> ());
  Prof.span p "after" (fun () -> ());
  Alcotest.(check int) "span closed on exception" 1 (path_count p "boom");
  Alcotest.(check string) "stack unwound: sibling not nested" "after"
    (let e = List.find (fun (e : Prof.entry) -> e.count = 1 && e.path <> "boom")
               (Prof.rows p) in
     e.path)

let test_record_path_and_merge () =
  let a = Prof.create () and b = Prof.create () in
  Prof.record_path a "x;y" ~count:3 ~ns:30.0 ();
  Prof.record_path b "x;y" ~count:2 ~ns:20.0 ();
  Prof.record_path b "z" ~ns:1.0 ();
  let ab = Prof.create () and ba = Prof.create () in
  Prof.merge_into ~dst:ab a;
  Prof.merge_into ~dst:ab b;
  Prof.merge_into ~dst:ba b;
  Prof.merge_into ~dst:ba a;
  Alcotest.(check string) "merge order irrelevant"
    (Prof.report ab) (Prof.report ba);
  Alcotest.(check int) "counts sum" 5 (path_count ab "x;y");
  Alcotest.(check int) "calls folded too" (Prof.calls ab) (Prof.calls ba)

let test_folded_format () =
  let p = Prof.create () in
  Prof.record_path p "a;b" ~ns:42.0 ();
  Prof.record_path p "a" ~ns:7.0 ();
  Alcotest.(check string) "folded lines: path space self_ns"
    "a 7\na;b 42\n" (Prof.to_folded p)

(* ---- golden profile report ---- *)

(* dune copies the golden deps next to the test executable; when run via
   `dune exec` from the repo root, fall back to the source tree *)
let golden path =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) path;
      path;
      Filename.concat "test" path;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_profiled ?(options = E.default_options) p w =
  let prof = Prof.create () in
  let r = E.run_exn ~options:{ options with E.prof } p w in
  (r, prof)

let test_golden_report () =
  let _, prof =
    run_profiled E.Inf_s (Infs_workloads.Stencil.stencil1d ~iters:10 ~n:4_194_304)
  in
  let got = Prof.report ~normalize:true prof in
  let path = golden "golden/prof_stencil1d_inf_s.txt" in
  let want = read_file path in
  if got <> want then
    Alcotest.failf
      "normalized profile diverges from golden %s\n--- got ---\n%s--- end ---\n\
       If an instrumentation change is intentional, regenerate the golden \
       from this output."
      path got;
  (* the JSON rendering carries the same rows under the same schema *)
  match Prof.to_json ~normalize:true prof with
  | Json.Obj kvs ->
    Alcotest.(check bool) "schema tag" true
      (List.assoc_opt "schema" kvs = Some (Json.Str "infs-prof-1"));
    (match List.assoc_opt "spans" kvs with
    | Some (Json.Arr spans) ->
      Alcotest.(check int) "one JSON span per report row"
        (List.length (Prof.rows prof))
        (List.length spans)
    | _ -> Alcotest.fail "no spans array")
  | _ -> Alcotest.fail "profile JSON is not an object"

(* ---- reconciliation with trace/metrics ---- *)

let lines_of s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

let contains line needle =
  let n = String.length needle and m = String.length line in
  let rec go i = i + n <= m && (String.sub line i n = needle || go (i + 1)) in
  go 0

let count_events jsonl ev =
  List.length
    (List.filter
       (fun l -> contains l (Printf.sprintf "\"ev\":%S" ev))
       (lines_of jsonl))

let check_prof_reconciles name p w =
  let buf = Buffer.create 4096 in
  let trace = Trace.to_buffer Trace.Jsonl buf in
  let prof = Prof.create () in
  let _r =
    E.run_exn ~options:{ E.default_options with E.trace; prof } p w
  in
  Trace.close trace;
  let jsonl = Buffer.contents buf in
  let check what want got =
    Alcotest.(check int) (Printf.sprintf "%s: %s" name what) want got
  in
  (* each execution-path span equals the Region_exec count for its target
     (the metrics regions.<where> counters derive from the same events) *)
  check "core spans = regions.in-core"
    (int_of_float (Trace.counter trace "regions.in-core"))
    (Prof.count_leaf prof "core");
  check "near spans = regions.near-L3"
    (int_of_float (Trace.counter trace "regions.near-L3"))
    (Prof.count_leaf prof "near");
  check "imc spans = regions.in-L3"
    (int_of_float (Trace.counter trace "regions.in-L3"))
    (Prof.count_leaf prof "imc");
  (* one jit span per memoized lookup, hits included *)
  check "jit spans = memo lookups"
    (int_of_float
       (Trace.counter trace "jit.memo_hits"
       +. Trace.counter trace "jit.memo_misses"))
    (Prof.count_leaf prof "jit");
  (* the engine is the sole Offload_decision emitter in a fault-free run *)
  check "decide spans = decision events" (count_events jsonl "decision")
    (Prof.count_leaf prof "decide");
  (* replaying yields the same counts (times vary, counts never) *)
  let prof2 = Prof.create () in
  ignore (E.run_exn ~options:{ E.default_options with E.prof = prof2 } p w);
  Alcotest.(check string)
    (Printf.sprintf "%s: counts replay-deterministic" name)
    (Prof.report ~normalize:true prof)
    (Prof.report ~normalize:true prof2)

let reconcile_tests =
  List.concat_map
    (fun (name, w) ->
      List.map
        (fun p ->
          ( Printf.sprintf "reconcile: %s [%s]" name (E.paradigm_to_string p),
            `Quick,
            fun () ->
              check_prof_reconciles
                (Printf.sprintf "%s [%s]" name (E.paradigm_to_string p))
                p w ))
        E.all_paradigms)
    (Cat.all_variants (Cat.test_scale ()))

(* ---- serve: request spans vs Request_span events ---- *)

let test_serve_request_spans () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "infs-prof-%d.sock" (Unix.getpid ()))
  in
  let buf = Buffer.create 4096 in
  let trace = Trace.to_buffer Trace.Jsonl buf in
  let prof = Prof.create () in
  let cfg =
    { (Serve.default_config ~socket_path:path) with Serve.jobs = 2; trace; prof }
  in
  let sent = 5 in
  let st =
    match Serve.start cfg ~handler:(fun j -> Ok j) with
    | Error e -> Alcotest.fail e
    | Ok t ->
      Fun.protect
        ~finally:(fun () ->
          try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
        (fun () ->
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          let ic = Unix.in_channel_of_descr fd
          and oc = Unix.out_channel_of_descr fd in
          for i = 0 to sent - 1 do
            output_string oc (Printf.sprintf "{\"id\": %d}\n" i)
          done;
          flush oc;
          for _ = 1 to sent do
            ignore (input_line ic)
          done;
          Unix.close fd;
          Serve.request_stop t;
          Serve.wait t)
  in
  Trace.close trace;
  Alcotest.(check int) "all requests ok" sent st.Serve.ok;
  (* every completed request contributes exactly one event per stage *)
  List.iter
    (fun stage ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "trace counter serve.spans.%s" stage)
        (float_of_int sent)
        (Trace.counter trace ("serve.spans." ^ stage));
      Alcotest.(check int)
        (Printf.sprintf "prof spans serve;request;%s" stage)
        sent
        (path_count prof ("serve;request;" ^ stage)))
    [ "queue_wait"; "run"; "write_back" ];
  (* the drain folded per-worker pool rows into the same registry *)
  Alcotest.(check int) "pool busy rows cover every job" sent
    (Prof.count_leaf prof "busy")

(* ---- trend ---- *)

let trend_fixtures = [ "trend_a.json"; "trend_b.json"; "trend_c.json" ]

(* mirrors `infs_run trend`: filename order, re-ordered by meta.timestamp
   when every snapshot carries one; label = 12-char commit prefix *)
let load_trend_snapshots () =
  let snaps =
    List.map
      (fun f ->
        match Bench_file.of_string (read_file (golden ("golden/" ^ f))) with
        | Ok s -> (f, s)
        | Error e -> Alcotest.failf "%s: %s" f e)
      trend_fixtures
  in
  let stamped =
    List.map (fun (f, s) -> (f, s, Bench_file.timestamp s)) snaps
  in
  let ordered =
    if List.for_all (fun (_, _, ts) -> ts <> None) stamped then
      List.stable_sort
        (fun (_, _, a) (_, _, b) -> compare a b)
        stamped
    else stamped
  in
  List.map
    (fun (f, s, _) ->
      let label =
        match Bench_file.commit s with
        | Some c when String.length c > 12 -> String.sub c 0 12
        | Some c -> c
        | None -> Filename.remove_extension f
      in
      (label, s))
    ordered

let test_trend_golden_page () =
  let t = Trend.build (load_trend_snapshots ()) in
  let got = Trend.to_markdown t in
  let path = golden "golden/trend.md" in
  let want = read_file path in
  if got <> want then
    Alcotest.failf
      "trend page diverges from golden %s\n--- got ---\n%s--- end ---" path got;
  (* the fixtures plant exactly one regression beyond the 5%% default *)
  (match Trend.regressions t with
  | [ (key, d) ] ->
    Alcotest.(check string) "planted regression flagged" "stencil1d [inf-s]" key;
    Alcotest.(check bool) "delta beyond threshold" true (d > 5.0)
  | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs));
  (* the HTML page carries the same rows and flags *)
  let html = Trend.to_html t in
  Alcotest.(check bool) "html flags the regression" true
    (contains html "class=\"regression\"");
  Alcotest.(check bool) "html is a standalone document" true
    (String.length html > 15 && String.sub html 0 15 = "<!DOCTYPE html>")

let test_trend_missing_cells () =
  let parse s = Result.get_ok (Bench_file.of_string s) in
  let s1 =
    parse
      {|{"schema":"infs-bench-1","suite":"t","results":[
         {"workload":"a","paradigm":"p","tag":"","cycles":100}]}|}
  and s2 =
    parse
      {|{"schema":"infs-bench-1","suite":"t","results":[
         {"workload":"a","paradigm":"p","tag":"","cycles":100},
         {"workload":"b","paradigm":"p","tag":"","cycles":5}]}|}
  in
  let t = Trend.build [ ("one", s1); ("two", s2) ] in
  let row key = List.find (fun (r : Trend.row) -> r.key = key) t.Trend.rows in
  Alcotest.(check string) "absent snapshot renders a dot" "·"
    (String.sub (row "b [p]").Trend.spark 0 (String.length "·"));
  Alcotest.(check (option (float 0.0))) "single-point key has no delta" None
    (row "b [p]").Trend.delta_pct;
  Alcotest.(check (option (float 0.0))) "flat series has zero delta" (Some 0.0)
    (row "a [p]").Trend.delta_pct

(* ---- bench-bisect ---- *)

let bench_of ~suite cells =
  let results =
    List.map
      (fun (w, p, c) ->
        Printf.sprintf
          {|{"workload":%S,"paradigm":%S,"tag":"","cycles":%g}|} w p c)
      cells
  in
  Result.get_ok
    (Bench_file.of_string
       (Printf.sprintf
          {|{"schema":"infs-bench-1","suite":%S,"results":[%s]}|} suite
          (String.concat "," results)))

let grid v =
  [ ("mm", "base", v 0); ("mm", "inf-s", v 1); ("stencil", "base", v 2);
    ("stencil", "inf-s", v 3) ]

let test_bisect_no_regression () =
  let old_ = bench_of ~suite:"t" (grid (fun i -> 100.0 +. float_of_int i)) in
  (* jitter below the threshold must not count as movement *)
  let new_ =
    bench_of ~suite:"t" (grid (fun i -> (100.0 +. float_of_int i) *. 1.001))
  in
  let groups, compared, moved = Bisect.minimize ~old_ ~new_ () in
  Alcotest.(check int) "4 cells compared" 4 compared;
  Alcotest.(check int) "nothing moved" 0 moved;
  Alcotest.(check int) "no groups" 0 (List.length groups)

let test_bisect_everything_moved () =
  let old_ = bench_of ~suite:"t" (grid (fun _ -> 100.0)) in
  let new_ = bench_of ~suite:"t" (grid (fun _ -> 150.0)) in
  let groups, compared, moved = Bisect.minimize ~old_ ~new_ () in
  Alcotest.(check int) "4 compared" 4 compared;
  Alcotest.(check int) "4 moved" 4 moved;
  match groups with
  | [ g ] ->
    Alcotest.(check string) "one root group" "* [*]" g.Bisect.label;
    Alcotest.(check int) "absorbing every cell" 4 (List.length g.Bisect.cells);
    Alcotest.(check (float 1e-9)) "impact sums |new-old|" 200.0 g.Bisect.impact
  | gs -> Alcotest.failf "expected the root group, got %d groups" (List.length gs)

let test_bisect_workload_slice () =
  let old_ = bench_of ~suite:"t" (grid (fun _ -> 100.0)) in
  let new_ =
    bench_of ~suite:"t"
      [ ("mm", "base", 150.0); ("mm", "inf-s", 140.0); ("stencil", "base", 100.0);
        ("stencil", "inf-s", 100.0) ]
  in
  let groups, _, moved = Bisect.minimize ~old_ ~new_ () in
  Alcotest.(check int) "2 moved" 2 moved;
  (match groups with
  | [ g ] ->
    Alcotest.(check string) "whole-workload slice named" "mm [*]" g.Bisect.label;
    Alcotest.(check string) "worst cell is the biggest mover" "mm [base]"
      g.Bisect.worst.Bisect.key
  | gs -> Alcotest.failf "expected one slice group, got %d" (List.length gs));
  (* JSON shape of the same result *)
  match Bisect.to_json (groups, 4, moved) with
  | Json.Obj kvs ->
    Alcotest.(check bool) "schema tag" true
      (List.assoc_opt "schema" kvs = Some (Json.Str "infs-bisect-1"))
  | _ -> Alcotest.fail "bisect JSON is not an object"

let test_bisect_single_cell_and_sign () =
  let old_ = bench_of ~suite:"t" (grid (fun _ -> 100.0)) in
  (* a diagonal pair — no complete slice — one regression and one larger
     improvement: impact ranks the improvement first, |delta| is what
     moves cycles *)
  let new_ =
    bench_of ~suite:"t"
      [ ("mm", "base", 110.0); ("mm", "inf-s", 100.0); ("stencil", "base", 100.0);
        ("stencil", "inf-s", 50.0) ]
  in
  let groups, _, moved = Bisect.minimize ~old_ ~new_ () in
  Alcotest.(check int) "2 moved" 2 moved;
  Alcotest.(check (list string)) "cells named, impact-descending"
    [ "stencil [inf-s]"; "mm [base]" ]
    (List.map (fun g -> g.Bisect.label) groups);
  Alcotest.(check bool) "improvement has negative delta" true
    ((List.hd groups).Bisect.worst.Bisect.delta_pct < 0.0)

let test_bisect_disjoint_keys_ignored () =
  let old_ = bench_of ~suite:"t" [ ("mm", "base", 100.0) ] in
  let new_ = bench_of ~suite:"t" [ ("qr", "base", 100.0) ] in
  let groups, compared, moved = Bisect.minimize ~old_ ~new_ () in
  Alcotest.(check int) "no common cells" 0 compared;
  Alcotest.(check int) "nothing moved" 0 moved;
  Alcotest.(check int) "no groups" 0 (List.length groups)

let suite =
  [
    ("null registry is inert", `Quick, test_null_registry);
    ("span nesting and unbalanced leave", `Quick, test_span_nesting);
    ("span is exception-safe", `Quick, test_span_exception_safe);
    ("record_path + merge order irrelevance", `Quick, test_record_path_and_merge);
    ("folded-stack rendering", `Quick, test_folded_format);
    ("golden profile: stencil1d @ Inf-S", `Quick, test_golden_report);
    ("serve request spans reconcile", `Quick, test_serve_request_spans);
    ("trend: golden page from fixtures", `Quick, test_trend_golden_page);
    ("trend: missing cells and flat series", `Quick, test_trend_missing_cells);
    ("bisect: sub-threshold jitter is quiet", `Quick, test_bisect_no_regression);
    ("bisect: global shift collapses to root", `Quick, test_bisect_everything_moved);
    ("bisect: whole-workload slice named", `Quick, test_bisect_workload_slice);
    ("bisect: per-cell ranking by impact", `Quick, test_bisect_single_cell_and_sign);
    ("bisect: disjoint snapshots compare nothing", `Quick,
     test_bisect_disjoint_keys_ignored);
  ]
  @ reconcile_tests
