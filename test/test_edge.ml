(* Second-round coverage: negative coordinates, residency pressure, warm
   options, report utilities, JIT details. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module W = Infinity_stream.Workload

let cfg = Machine_config.default

let test_decompose_negative_coords () =
  (* tile boundaries below zero: floor semantics, still a partition *)
  let r = Hyperrect.of_ranges [ (-5, 7) ] in
  let pieces = Hyperrect.decompose r ~tile:[| 4 |] in
  let vol = List.fold_left (fun a p -> a + Hyperrect.volume p) 0 pieces in
  Alcotest.(check int) "volume preserved" 12 vol;
  List.iter
    (fun p ->
      let lo = Hyperrect.lo p 0 and hi = Hyperrect.hi p 0 in
      let fdiv x = if x >= 0 then x / 4 else -(((-x) + 3) / 4) in
      Alcotest.(check bool) "piece aligned or within one tile" true
        ((lo mod 4 = 0 && hi mod 4 = 0) || fdiv lo = fdiv (hi - 1)))
    pieces

let test_hyperrect_scalar () =
  Alcotest.(check int) "scalar volume" 1 (Hyperrect.volume Hyperrect.scalar);
  Alcotest.(check int) "scalar dims" 0 (Hyperrect.dims Hyperrect.scalar);
  let count = Hyperrect.fold_points Hyperrect.scalar ~init:0 ~f:(fun a _ -> a + 1) in
  Alcotest.(check int) "one point" 1 count

let test_symaff_subst_composes () =
  let open Symaff in
  let e = add (term 3 "i") (add (term 2 "j") (const 1)) in
  let s = subst (subst e "i" (add (var "k") (const 2))) "j" (const 5) in
  (* 3(k+2) + 2*5 + 1 = 3k + 17 *)
  Alcotest.(check int) "composed subst" 47 (eval s (fun _ -> 10))

let test_machine_config_small () =
  let s = Machine_config.small in
  Alcotest.(check bool) "smaller machine" true
    (Machine_config.total_bitlines s < Machine_config.total_bitlines cfg);
  Alcotest.(check int) "4 banks" 4 s.l3_banks

let test_report_utilities () =
  Alcotest.(check string) "where names" "in-L3" (R.where_to_string R.In_mem);
  Alcotest.(check string) "near" "near-L3" (R.where_to_string R.Near_mem)

let test_workload_scaled () =
  let w = Infs_workloads.Micro.vec_add ~n:1024 in
  let w2 = W.scaled w ~params:[ ("N", 64) ] ~inputs:(lazy []) in
  Alcotest.(check (option int)) "params replaced" (Some 64)
    (List.assoc_opt "N" w2.W.params);
  Alcotest.(check string) "program shared" w.W.prog.Ast.name w2.W.prog.Ast.name

let test_interp_on_kernel_hook () =
  let w = Infs_workloads.Micro.vec_add ~n:16 in
  match Interp.create w.W.prog ~params:w.W.params with
  | Error e -> Alcotest.fail e
  | Ok env ->
    let count = ref 0 in
    Interp.run ~on_kernel:(fun _ _ -> incr count) env;
    Alcotest.(check int) "hook replaces execution" 1 !count;
    (* the kernel did not run: C stays zero *)
    Alcotest.(check (float 0.0)) "untouched" 0.0 (Interp.get_array env "C").(0)

let test_jit_reduce_width_clamped () =
  (* reducing a dimension larger than the tile leaves cross-tile partials
     for the near-memory final reduce *)
  let g = Tdfg.create ~name:"t" ~dims:1 ~dtype:Dtype.Fp32 in
  let view = Symrect.of_hyperrect (Hyperrect.of_ranges [ (0, 1024) ]) in
  let a = Tdfg.tensor g ~array:"A" ~view ~axes:[ 0 ] in
  let r = Tdfg.reduce g Op.Add a ~dim:0 in
  Tdfg.add_output g (Tdfg.Out_tensor { src = r; array = "S"; axes = [ 0 ] });
  let schedule =
    match Schedule.compile ~wordlines:256 g with Ok s -> s | Error e -> Alcotest.fail e
  in
  let layout =
    match Layout.of_tile cfg ~shape:[| 1024 |] ~tile:[| 256 |] with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  let acmds, stats = Jit.lower cfg g ~schedule ~layout ~env:(fun _ -> 0) in
  let cmds = Array.to_list acmds in
  let widths =
    List.filter_map
      (fun (c : Command.t) ->
        match c.kind with Command.Reduce { width; _ } -> Some width | _ -> None)
      cmds
  in
  Alcotest.(check (list int)) "width clamped to tile" [ 256 ] widths;
  (* 4 tiles worth of partials *)
  Alcotest.(check (float 0.1)) "final reduce partials" 4.0 stats.Jit.final_reduce_elems

let test_jit_writeback_copy_emitted () =
  (* when the result lands in a temporary slot, a copy command moves it to
     the array's persistent wordlines *)
  let g = Tdfg.create ~name:"t" ~dims:1 ~dtype:Dtype.Fp32 in
  let view = Symrect.of_hyperrect (Hyperrect.of_ranges [ (0, 256) ]) in
  let a = Tdfg.tensor g ~array:"A" ~view ~axes:[ 0 ] in
  let s = Tdfg.cmp g Op.Mul [ a; a ] in
  Tdfg.add_output g (Tdfg.Out_tensor { src = s; array = "B"; axes = [ 0 ] });
  let schedule =
    match Schedule.compile ~wordlines:256 g with Ok s -> s | Error e -> Alcotest.fail e
  in
  let layout =
    match Layout.of_tile cfg ~shape:[| 256 |] ~tile:[| 256 |] with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  let acmds, _ = Jit.lower cfg g ~schedule ~layout ~env:(fun _ -> 0) in
  let cmds = Array.to_list acmds in
  let copies =
    List.filter
      (fun (c : Command.t) ->
        match c.kind with
        | Command.Compute { op = Op.Copy; _ } -> true
        | _ -> false)
      cmds
  in
  Alcotest.(check int) "one writeback copy" 1 (List.length copies)

let test_residency_pressure_causes_dram () =
  (* a workload bigger than the L3 must pay DRAM even on re-touch *)
  let open Ast in
  let n = Symaff.var "N" in
  let names = List.init 12 (fun i -> Printf.sprintf "BIG%d" i) in
  (* 12 arrays x 16MB = 192MB > 144MB L3 *)
  let arrays = List.map (fun a -> array a Dtype.Fp32 [ n ]) names in
  let stmts =
    List.map
      (fun a ->
        Kernel
          (kernel ("k_" ^ a)
             [ loop "r" (c 0) n ]
             [ store a [ i "r" ] (load a [ i "r" ] + fconst 1.0) ]))
      names
  in
  let prog = program ~name:"big" ~params:[ "N" ] ~arrays (stmts @ stmts) in
  let w = W.make ~name:"big" ~params:[ ("N", 4_194_304) ] ~inputs:(lazy []) prog in
  let r = E.run_exn E.Base w in
  (* first pass loads 12 x 16MB; second pass cannot all hit *)
  Alcotest.(check bool) "dram beyond one pass" true
    (r.R.breakdown.Breakdown.dram
    > Dram.load_cycles cfg ~bytes:(12.0 *. 16.0 *. 1024.0 *. 1024.0) *. 1.2)

let test_warm_data_removes_dram () =
  let w = Infs_workloads.Stencil.stencil2d ~iters:2 ~n:2048 in
  let cold = E.run_exn E.Base w in
  let warm = E.run_exn ~options:{ E.default_options with warm_data = true } E.Base w in
  Alcotest.(check bool) "cold pays dram" true (cold.R.breakdown.Breakdown.dram > 0.0);
  Alcotest.(check (float 0.0)) "warm pays none" 0.0 warm.R.breakdown.Breakdown.dram

let test_pre_transposed_removes_transpose () =
  let w = Infs_workloads.Micro.vec_add ~n:4_194_304 in
  let warm = { E.default_options with warm_data = true } in
  let pre = { warm with pre_transposed = true } in
  let a = E.run_exn ~options:warm E.In_l3 w in
  let b = E.run_exn ~options:pre E.In_l3 w in
  Alcotest.(check bool) "transposition charged when not pre-transposed" true
    (a.R.breakdown.Breakdown.dram > b.R.breakdown.Breakdown.dram)

let test_optimize_off_option () =
  let w = Infs_workloads.Conv.conv2d ~n:2048 in
  let on = E.run_exn E.Inf_s w in
  let off =
    E.run_exn ~options:{ E.default_options with optimize = false } E.Inf_s w
  in
  Alcotest.(check bool) "optimizer helps conv2d" true (on.R.cycles <= off.R.cycles)

let test_energy_of_traffic () =
  let t = Traffic.create cfg in
  Traffic.add t Traffic.Data ~bytes:100.0 ~hops:2.0;
  Traffic.add_local t `Intra_tile ~bytes:64.0;
  let e = Energy.fresh () in
  Energy.of_traffic e t;
  Alcotest.(check (float 1e-9)) "byte-hops folded" 200.0 e.Energy.noc_byte_hops;
  Alcotest.(check (float 1e-9)) "intra folded" 64.0 e.intra_tile_bytes;
  let labels = List.map fst (Energy.breakdown e) in
  Alcotest.(check int) "8 energy classes" 8 (List.length labels)

let test_command_pp () =
  let c =
    Command.make
      (Command.Inter_shift { dim = 1; tile_dist = 2; intra_dist = -3 })
      ~bitline_pat:(Pattern.make ~start:1 ~stride:2 ~count:2)
      ~dtype:Dtype.Fp32
      ~tile_box:(Hyperrect.of_ranges [ (0, 2); (0, 2) ])
      ~lanes_per_tile:8
  in
  let s = Command.to_string c in
  Alcotest.(check bool) "mentions pattern" true
    (String.length s > 0
    && String.split_on_char ' ' s |> List.exists (fun w -> w = "pat=1:2:2"))

let test_fig7_gauss_structure () =
  (* the compiled gauss program matches Fig. 7: the multiplier column is a
     stream (near-memory), the trailing update is broadcast + elementwise *)
  let w = Infs_workloads.Gauss.gauss_elim ~n:64 in
  match Fat_binary.compile w.W.prog with
  | Error e -> Alcotest.fail e
  | Ok fb ->
    let m = Option.get (Fat_binary.region_of fb "gauss_m") in
    let has_stream =
      List.exists
        (fun id ->
          match Tdfg.kind m.optimized id with
          | Tdfg.Stream_load { array = "A"; _ } -> true
          | _ -> false)
        (Tdfg.live_nodes m.optimized)
    in
    Alcotest.(check bool) "Aik is a stream" true has_stream;
    let a = Option.get (Fat_binary.region_of fb "gauss_a") in
    Alcotest.(check bool) "update broadcasts both dims" true
      (List.length a.hints.Fat_binary.bc_dims = 2);
    Alcotest.(check (list string)) "runtime scalars via inf_cfg" [ "akk" ]
      (Tdfg.runtime_scalars m.optimized)

let suite =
  [
    ("decompose negative coords", `Quick, test_decompose_negative_coords);
    ("hyperrect scalar", `Quick, test_hyperrect_scalar);
    ("symaff subst composes", `Quick, test_symaff_subst_composes);
    ("machine config small", `Quick, test_machine_config_small);
    ("report utilities", `Quick, test_report_utilities);
    ("workload scaled", `Quick, test_workload_scaled);
    ("interp kernel hook", `Quick, test_interp_on_kernel_hook);
    ("jit reduce width clamped", `Quick, test_jit_reduce_width_clamped);
    ("jit writeback copy", `Quick, test_jit_writeback_copy_emitted);
    ("residency pressure pays dram", `Quick, test_residency_pressure_causes_dram);
    ("warm data removes dram", `Quick, test_warm_data_removes_dram);
    ("pre-transposed removes transpose", `Quick, test_pre_transposed_removes_transpose);
    ("optimize-off option", `Quick, test_optimize_off_option);
    ("energy of traffic", `Quick, test_energy_of_traffic);
    ("command printing", `Quick, test_command_pp);
    ("Fig 7 gauss structure", `Quick, test_fig7_gauss_structure);
  ]
