(* Fault injection & resilience (infs_fault + the engine's mitigation):

   - spec parsing / canonical printing and the injector's per-site
     deterministic streams,
   - the differential oracle: random (catalog workload, paradigm, machine
     config, fault seed) triples must still match the scalar Lang.Interp
     oracle after mitigation — retries and paradigm fallback may change
     WHERE a kernel executes, never WHAT it computes,
   - the no-perturbation guard: with faults disabled (the default) the
     report JSON is byte-identical to a faultless build, and an armed
     zero-rate spec perturbs nothing but the [faults] summary,
   - determinism: identical specs give byte-identical reports, and fault
     trace/metrics agree between live runs and offline replay,
   - pool resilience: [Pool.Degradation] maps to the structured
     [Degraded] outcome (never retried); ordinary crashes honor the
     retry-with-backoff budget,
   - goldens: one seeded fault scenario's JSONL trace and its analyze
     report are pinned byte-for-byte under golden/. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module W = Infinity_stream.Workload
module Cat = Infs_workloads.Catalog

let spec_of_string s =
  match Fault.parse s with
  | Ok sp -> sp
  | Error e -> Alcotest.failf "parse %S: %s" s e

(* ---- spec parsing ---- *)

let test_parse () =
  Alcotest.(check bool) "empty spec is none" true (Fault.is_none (spec_of_string ""));
  let sp = spec_of_string "seed=42,sram=1e-4,noc=0.25,jitter=3.5,dram=0.1,stall=512,watchdog=0.05,retries=4" in
  Alcotest.(check string) "canonical round-trip"
    "seed=42,sram=0.0001,noc=0.25,jitter=3.5,dram=0.1,stall=512,watchdog=0.05,retries=4"
    (Fault.to_string sp);
  Alcotest.(check bool) "seeded spec is armed" false (Fault.is_none sp);
  (match Fault.parse (Fault.to_string sp) with
  | Ok sp' -> Alcotest.(check bool) "to_string parses back" true (sp = sp')
  | Error e -> Alcotest.failf "round-trip rejected: %s" e);
  Alcotest.(check bool) "seed alone arms the model" false
    (Fault.is_none (spec_of_string "seed=7"));
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "sram=2"; "noc=-0.5"; "jitter=0.5"; "retries=-1"; "seed=x"; "bogus=1"; "sram" ]

let test_injector_streams () =
  let sp = spec_of_string "seed=5,sram=0.5,noc=0.5,dram=0.5,watchdog=0.5" in
  let seq inj =
    List.init 64 (fun i ->
        match i mod 4 with
        | 0 -> Fault.sram_flip inj ~exposure:32
        | 1 -> Fault.noc_factor inj > 1.0
        | 2 -> Fault.dram_stall_cycles inj > 0.0
        | _ -> Fault.watchdog_timeout inj)
  in
  let a = seq (Fault.create sp ~scope:"w|inf-s") in
  let b = seq (Fault.create sp ~scope:"w|inf-s") in
  Alcotest.(check (list bool)) "same scope, same stream" a b;
  (* one site's draw count must not shift another site's sequence *)
  let inj = Fault.create sp ~scope:"w|inf-s" in
  for _ = 1 to 1000 do
    ignore (Fault.noc_factor inj)
  done;
  let inj' = Fault.create sp ~scope:"w|inf-s" in
  let flips inj = List.init 32 (fun _ -> Fault.sram_flip inj ~exposure:32) in
  ignore (Fault.noc_factor inj');
  Alcotest.(check (list bool)) "sites are independent streams" (flips inj') (flips inj);
  Alcotest.(check bool) "zero exposure never flips" false
    (Fault.sram_flip (Fault.create sp ~scope:"x") ~exposure:0)

(* ---- differential oracle (qcheck) ---- *)

let oracle_workloads = Cat.all_variants (Cat.test_scale ())
let oracle_paradigms = [| E.Near_l3; E.In_l3; E.Inf_s; E.Inf_s_nojit |]

let oracle_cfgs =
  [| ("default", Machine_config.default); ("big-arrays", Machine_config.big_arrays) |]

(* rate templates spanning single-site and mixed-site injection *)
let oracle_templates =
  [|
    "sram=0.01,retries=1";
    "watchdog=0.5,retries=0";
    "noc=0.3,jitter=4,dram=0.3,stall=8192";
    "sram=0.005,noc=0.2,jitter=2,dram=0.2,watchdog=0.3,retries=2";
  |]

type oracle_case = { o_w : int; o_p : int; o_cfg : int; o_tmpl : int; o_seed : int }

let oracle_spec c =
  spec_of_string
    (Printf.sprintf "seed=%d,%s" c.o_seed oracle_templates.(c.o_tmpl))

(* the full replay line a failure prints *)
let oracle_print c =
  Printf.sprintf "workload=%s paradigm=%s cfg=%s --faults \"%s\""
    (fst (List.nth oracle_workloads c.o_w))
    (E.paradigm_to_string oracle_paradigms.(c.o_p))
    (fst oracle_cfgs.(c.o_cfg))
    (Fault.to_string (oracle_spec c))

let oracle_gen =
  QCheck.Gen.(
    map
      (fun (((w, p), (cfg, tmpl)), seed) ->
        { o_w = w; o_p = p; o_cfg = cfg; o_tmpl = tmpl; o_seed = seed })
      (pair
         (pair
            (pair (int_bound (List.length oracle_workloads - 1))
               (int_bound (Array.length oracle_paradigms - 1)))
            (pair (int_bound (Array.length oracle_cfgs - 1))
               (int_bound (Array.length oracle_templates - 1))))
         (int_bound 99_999)))

let oracle_arb = QCheck.make ~print:oracle_print oracle_gen

let prop_differential_oracle =
  QCheck.Test.make
    ~name:"mitigated runs match the scalar interpreter oracle" ~count:40
    oracle_arb
    (fun c ->
      let _, w = List.nth oracle_workloads c.o_w in
      let options =
        {
          E.default_options with
          functional = true;
          cfg = snd oracle_cfgs.(c.o_cfg);
          faults = oracle_spec c;
        }
      in
      match E.run ~options oracle_paradigms.(c.o_p) w with
      | Error e -> QCheck.Test.fail_reportf "engine error (crash): %s" e
      | Ok r -> (
        match (r.R.correctness, r.R.faults) with
        | `Skipped, _ -> QCheck.Test.fail_report "correctness check skipped"
        | _, None -> QCheck.Test.fail_report "armed run lost its fault summary"
        | `Checked err, Some f ->
          if err > 1e-3 then
            QCheck.Test.fail_reportf
              "silent wrong answer: max error %.3e (injected=%d retries=%d fallbacks=%d)"
              err
              (List.fold_left (fun a (_, n) -> a + n) 0 f.R.injected)
              f.R.retries f.R.fallbacks;
          let injected = List.fold_left (fun a (_, n) -> a + n) 0 f.R.injected in
          if f.R.degraded <> (injected > 0) then
            QCheck.Test.fail_reportf "degraded=%b but injected=%d" f.R.degraded
              injected;
          if f.R.wasted_cycles < 0.0 then
            QCheck.Test.fail_report "negative wasted cycles";
          true))

(* ---- no-perturbation guard ---- *)

let guard_paradigms = [ E.Base; E.Near_l3; E.In_l3; E.Inf_s ]

let test_no_perturbation () =
  let zero_rate = spec_of_string "seed=7" in
  List.iter
    (fun (name, w) ->
      List.iter
        (fun p ->
          let r0 = E.run_exn p w in
          let j0 = Json.to_string (R.to_json r0) in
          (match r0.R.faults with
          | None -> ()
          | Some _ -> Alcotest.failf "%s: disabled run grew a fault summary" name);
          let r1 =
            E.run_exn ~options:{ E.default_options with E.faults = zero_rate } p w
          in
          (match r1.R.faults with
          | None -> Alcotest.failf "%s: armed run lost its fault summary" name
          | Some f ->
            Alcotest.(check int)
              (Printf.sprintf "%s [%s]: zero rates inject nothing" name
                 (E.paradigm_to_string p))
              0
              (List.fold_left (fun a (_, n) -> a + n) 0 f.R.injected);
            Alcotest.(check bool) "not degraded" false f.R.degraded);
          (* stripping the summary must recover the disabled run's bytes:
             zero-rate hooks draw but never perturb a single cycle *)
          Alcotest.(check string)
            (Printf.sprintf "%s [%s]: armed-zero-rate report is byte-identical"
               name (E.paradigm_to_string p))
            j0
            (Json.to_string (R.to_json { r1 with R.faults = None })))
        guard_paradigms)
    (Cat.all_variants (Cat.test_scale ()))

(* ---- determinism ---- *)

let det_spec = "seed=3,sram=0.002,noc=0.2,jitter=3,dram=0.3,stall=4096,watchdog=0.2,retries=1"

let test_determinism () =
  let spec = spec_of_string det_spec in
  List.iter
    (fun (name, w) ->
      List.iter
        (fun p ->
          let go () =
            Json.to_string
              (R.to_json
                 (E.run_exn ~options:{ E.default_options with E.faults = spec } p w))
          in
          Alcotest.(check string)
            (Printf.sprintf "%s [%s]: identical seed, identical report" name
               (E.paradigm_to_string p))
            (go ()) (go ()))
        [ E.Near_l3; E.In_l3; E.Inf_s ])
    [
      ("stencil1d", Infs_workloads.Stencil.stencil1d ~iters:3 ~n:2048);
      ("mm/out", Infs_workloads.Mm.mm_outer ~n:16);
    ]

(* ---- live = replay for fault series ---- *)

let fault_series (s : Metrics.series) =
  s.Metrics.name = "fault" || s.Metrics.name = "fault.cycles"

let test_fault_replay_agreement () =
  (* hot rates: the small scenario passes few draw sites, so make sure
     something actually injects on every site class *)
  let spec =
    spec_of_string
      "seed=3,sram=0.05,noc=0.5,jitter=3,dram=0.9,stall=4096,watchdog=0.5,retries=1"
  in
  let buf = Buffer.create 4096 in
  let trace = Trace.to_buffer Trace.Jsonl buf in
  let m = Metrics.create () in
  let r =
    E.run_exn
      ~options:{ E.default_options with E.trace; metrics = m; faults = spec }
      E.Inf_s
      (Infs_workloads.Stencil.stencil1d ~iters:3 ~n:2048)
  in
  Trace.close trace;
  (match r.R.faults with
  | Some f when List.fold_left (fun a (_, n) -> a + n) 0 f.R.injected > 0 -> ()
  | _ -> Alcotest.fail "scenario was expected to inject faults");
  let rp = Trace_replay.create () in
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.iter (fun line ->
         match Trace_replay.feed_line rp line with
         | Ok () -> ()
         | Error e -> Alcotest.failf "replay rejected %s: %s" line e);
  let sig_of ss =
    Json.to_string (Metrics.to_json (List.filter fault_series ss))
  in
  let live = sig_of (Metrics.snapshot m) in
  Alcotest.(check bool) "live run recorded fault series" true
    (live <> "{}" && live <> "[]");
  Alcotest.(check string) "fault series agree live vs replay" live
    (sig_of (Metrics.snapshot (Trace_replay.metrics rp)))

(* ---- pool resilience ---- *)

let test_pool_degraded () =
  let t = Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown t)
    (fun () ->
      let attempts = Atomic.make 0 in
      let tk =
        Pool.submit t ~retries:5 (fun () ->
            Atomic.incr attempts;
            raise (Pool.Degradation "sram fallback budget exhausted"))
      in
      (match Pool.await tk with
      | Error (Pool.Degraded msg) ->
        Alcotest.(check string) "degradation message"
          "sram fallback budget exhausted" msg
      | o ->
        Alcotest.failf "expected Degraded, got %s"
          (match o with
          | Ok _ -> "Ok"
          | Error e -> Pool.error_to_string e));
      Alcotest.(check int) "Degradation is never retried" 1 (Atomic.get attempts);
      Alcotest.(check string) "error_to_string"
        "degraded: boom"
        (Pool.error_to_string (Pool.Degraded "boom")))

let test_pool_retry_backoff () =
  let t = Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown t)
    (fun () ->
      (* transient crash: fails twice, then succeeds within the budget *)
      let attempts = Atomic.make 0 in
      let tk =
        Pool.submit t ~retries:3 (fun () ->
            if Atomic.fetch_and_add attempts 1 < 2 then failwith "transient";
            "ok")
      in
      (match Pool.await tk with
      | Ok s -> Alcotest.(check string) "recovered after retries" "ok" s
      | Error e -> Alcotest.failf "expected recovery, got %s" (Pool.error_to_string e));
      Alcotest.(check int) "two failures + one success" 3 (Atomic.get attempts);
      (* budget exhausted: the last exception surfaces as Failed *)
      let tk =
        Pool.submit t ~retries:2 (fun () -> failwith "permanent")
      in
      match Pool.await tk with
      | Error (Pool.Failed msg) ->
        Alcotest.(check bool) "carries the exception" true
          (String.length msg > 0)
      | o ->
        Alcotest.failf "expected Failed, got %s"
          (match o with Ok _ -> "Ok" | Error e -> Pool.error_to_string e))

(* ---- goldens: seeded scenario pinned byte-for-byte ---- *)

let golden_spec = "seed=3,sram=2e-4,noc=0.3,jitter=3,dram=0.5,stall=4096,watchdog=0.3,retries=1"

let golden path =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) path;
      path;
      Filename.concat "test" path;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let first_diff got want =
  let lines s = String.split_on_char '\n' s in
  let rec go i = function
    | g :: gs, w :: ws -> if g = w then go (i + 1) (gs, ws) else (i, g, w)
    | g :: _, [] -> (i, g, "<end of golden>")
    | [], w :: _ -> (i, "<end of output>", w)
    | [], [] -> (i, "<equal?>", "<equal?>")
  in
  go 1 (lines got, lines want)

let test_golden_fault_trace () =
  let buf = Buffer.create 65536 in
  let trace = Trace.to_buffer Trace.Jsonl buf in
  let options =
    { E.default_options with E.trace; faults = spec_of_string golden_spec }
  in
  ignore
    (E.run_exn ~options E.Inf_s
       (Infs_workloads.Stencil.stencil1d ~iters:10 ~n:4_194_304));
  Trace.close trace;
  let got = Buffer.contents buf in
  let want = read_file (golden "golden/fault_stencil1d_inf_s.jsonl") in
  if got <> want then begin
    let i, g, w = first_diff got want in
    Alcotest.failf
      "fault trace diverges from golden at line %d\n  got:    %s\n  golden: %s\n\
       If a fault-model change is intentional, regenerate with:\n\
      \  dune exec bin/infs_run.exe -- run -w stencil1d -p inf-s \
       --faults \"%s\" --trace test/golden/fault_stencil1d_inf_s.jsonl"
      i g w golden_spec
  end

let test_golden_fault_analyze () =
  let rp = Trace_replay.create () in
  let ic = open_in (golden "golden/fault_stencil1d_inf_s.jsonl") in
  (match Trace_replay.feed_channel rp ic with
  | Ok _ -> close_in ic
  | Error e ->
    close_in ic;
    Alcotest.failf "replay failed: %s" e);
  let got = Trace_replay.report ~top:8 rp in
  let want = read_file (golden "golden/analyze_fault_stencil1d_inf_s.txt") in
  if got <> want then begin
    let i, g, w = first_diff got want in
    Alcotest.failf
      "analyze report diverges from golden at line %d\n  got:    %s\n  golden: %s\n\
       If intentional, regenerate with:\n\
      \  dune exec bin/infs_run.exe -- analyze \
       test/golden/fault_stencil1d_inf_s.jsonl -o \
       test/golden/analyze_fault_stencil1d_inf_s.txt"
      i g w
  end

let suite =
  [
    ("spec parse / canonical print", `Quick, test_parse);
    ("injector per-site streams", `Quick, test_injector_streams);
    ("no-perturbation guard (catalog)", `Quick, test_no_perturbation);
    ("seeded determinism", `Quick, test_determinism);
    ("fault series: live = replay", `Quick, test_fault_replay_agreement);
    ("pool: structured Degraded outcome", `Quick, test_pool_degraded);
    ("pool: retry with backoff", `Quick, test_pool_retry_backoff);
    ("golden fault trace", `Quick, test_golden_fault_trace);
    ("golden fault analyze report", `Quick, test_golden_fault_analyze);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_differential_oracle;
  ]
